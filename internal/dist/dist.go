// Package dist provides the statistical distributions that drive every
// stochastic model in the wind tunnel: component time-to-failure, repair
// durations, workload interarrival and service demands.
//
// The paper (§2.2, §4.5) argues that exponential-only models mispredict
// data center behavior — field studies find Weibull times between disk
// replacements with shape < 1 (infant mortality) and LogNormal repair
// durations. The package therefore carries a family catalog wide enough
// to express those findings and more: Weibull, LogNormal, exponential,
// Gamma, Pareto, deterministic, empirical trace replay, and finite
// mixtures. FitBest (fit.go) calibrates families to operational-log
// durations; Parse (parse.go) turns declarative spec strings like
// "weibull(shape=0.7, scale=8760)" into distributions so scenarios and
// hardware catalogs can declare arbitrary failure models.
//
// All sampling is driven by *rng.Source so simulations stay
// deterministic and per-model streams stay independent.
package dist

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/rng"
)

// Dist is a non-negative continuous random variable, in the units the
// caller chooses (the simulator uses hours).
type Dist interface {
	// Sample draws one variate from r.
	Sample(r *rng.Source) float64
	// Mean returns the analytic expectation (may be +Inf, e.g. a Pareto
	// with alpha <= 1).
	Mean() float64
	// Variance returns the analytic variance (may be +Inf).
	Variance() float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns inf{x : CDF(x) >= p} for p in [0, 1).
	Quantile(p float64) float64
	// String returns a spec-grammar form that Parse accepts back.
	// Parameters are rounded to 6 significant digits, so a round trip
	// is equivalent to ~1e-6 relative precision, not bit-exact.
	String() string
}

// Must unwraps a constructor result, panicking on error. Use it for
// literal parameters known to be valid at compile time.
func Must[D Dist](d D, err error) D {
	if err != nil {
		panic(err)
	}
	return d
}

func checkPositive(pkg string, name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return fmt.Errorf("dist: %s needs %s > 0, got %v", pkg, name, v)
	}
	return nil
}

func checkQuantileP(p float64) {
	if math.IsNaN(p) || p < 0 || p >= 1 {
		panic(fmt.Sprintf("dist: Quantile needs p in [0, 1), got %v", p))
	}
}

// ---------------------------------------------------------------------------
// Weibull

// Weibull is the two-parameter Weibull distribution. Shape < 1 models
// infant mortality (decreasing hazard), shape = 1 is exponential,
// shape > 1 models wear-out.
type Weibull struct {
	Shape float64
	Scale float64
}

// NewWeibull returns a Weibull with the given shape k and scale lambda.
func NewWeibull(shape, scale float64) (Weibull, error) {
	if err := checkPositive("Weibull", "shape", shape); err != nil {
		return Weibull{}, err
	}
	if err := checkPositive("Weibull", "scale", scale); err != nil {
		return Weibull{}, err
	}
	return Weibull{Shape: shape, Scale: scale}, nil
}

// Sample draws by inverse transform: scale * (-ln U)^(1/shape).
func (w Weibull) Sample(r *rng.Source) float64 {
	return w.Scale * math.Pow(r.ExpFloat64(), 1/w.Shape)
}

func (w Weibull) Mean() float64 {
	return w.Scale * math.Gamma(1+1/w.Shape)
}

func (w Weibull) Variance() float64 {
	g1 := math.Gamma(1 + 1/w.Shape)
	g2 := math.Gamma(1 + 2/w.Shape)
	return w.Scale * w.Scale * (g2 - g1*g1)
}

func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Scale, w.Shape))
}

func (w Weibull) Quantile(p float64) float64 {
	checkQuantileP(p)
	return w.Scale * math.Pow(-math.Log1p(-p), 1/w.Shape)
}

func (w Weibull) String() string {
	return fmt.Sprintf("weibull(shape=%.6g, scale=%.6g)", w.Shape, w.Scale)
}

// ---------------------------------------------------------------------------
// LogNormal

// LogNormal is the distribution of exp(N(Mu, Sigma^2)).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// NewLogNormal returns a LogNormal with log-space mean mu and log-space
// standard deviation sigma.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return LogNormal{}, fmt.Errorf("dist: LogNormal needs finite mu, got %v", mu)
	}
	if err := checkPositive("LogNormal", "sigma", sigma); err != nil {
		return LogNormal{}, err
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// LogNormalFromMoments returns the LogNormal with the given real-space
// mean and coefficient of variation (stddev/mean). This is the natural
// parameterization for "12-hour repairs with cv 1.2"-style inputs.
func LogNormalFromMoments(mean, cv float64) (LogNormal, error) {
	if err := checkPositive("LogNormalFromMoments", "mean", mean); err != nil {
		return LogNormal{}, err
	}
	if err := checkPositive("LogNormalFromMoments", "cv", cv); err != nil {
		return LogNormal{}, err
	}
	sigma2 := math.Log1p(cv * cv)
	return LogNormal{Mu: math.Log(mean) - sigma2/2, Sigma: math.Sqrt(sigma2)}, nil
}

func (l LogNormal) Sample(r *rng.Source) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

func (l LogNormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return math.Expm1(s2) * math.Exp(2*l.Mu+s2)
}

func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

func (l LogNormal) Quantile(p float64) float64 {
	checkQuantileP(p)
	if p == 0 {
		return 0
	}
	return math.Exp(l.Mu + l.Sigma*normQuantile(p))
}

func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(mu=%.6g, sigma=%.6g)", l.Mu, l.Sigma)
}

// ---------------------------------------------------------------------------
// Exponential

// Exponential is the memoryless distribution with the given Rate.
type Exponential struct {
	Rate float64
}

// ExpMean returns an exponential distribution with the given mean.
func ExpMean(mean float64) (Exponential, error) {
	if err := checkPositive("ExpMean", "mean", mean); err != nil {
		return Exponential{}, err
	}
	return Exponential{Rate: 1 / mean}, nil
}

func (e Exponential) Sample(r *rng.Source) float64 {
	return r.ExpFloat64() / e.Rate
}

func (e Exponential) Mean() float64 { return 1 / e.Rate }

func (e Exponential) Variance() float64 { return 1 / (e.Rate * e.Rate) }

func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

func (e Exponential) Quantile(p float64) float64 {
	checkQuantileP(p)
	return -math.Log1p(-p) / e.Rate
}

func (e Exponential) String() string {
	return fmt.Sprintf("exp(mean=%.6g)", 1/e.Rate)
}

// ---------------------------------------------------------------------------
// Deterministic

// Deterministic is a degenerate distribution: every draw is Value.
type Deterministic struct {
	Value float64
}

// NewDeterministic returns a point mass at v (v >= 0, finite).
func NewDeterministic(v float64) (Deterministic, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return Deterministic{}, fmt.Errorf("dist: Deterministic needs a finite value >= 0, got %v", v)
	}
	return Deterministic{Value: v}, nil
}

func (d Deterministic) Sample(*rng.Source) float64 { return d.Value }

func (d Deterministic) Mean() float64 { return d.Value }

func (d Deterministic) Variance() float64 { return 0 }

func (d Deterministic) CDF(x float64) float64 {
	if x < d.Value {
		return 0
	}
	return 1
}

func (d Deterministic) Quantile(p float64) float64 {
	checkQuantileP(p)
	return d.Value
}

func (d Deterministic) String() string {
	return fmt.Sprintf("det(%.6g)", d.Value)
}

// ---------------------------------------------------------------------------
// Gamma

// Gamma is the two-parameter Gamma distribution (shape k, scale theta).
type Gamma struct {
	Shape float64
	Scale float64
}

// NewGamma returns a Gamma with the given shape and scale.
func NewGamma(shape, scale float64) (Gamma, error) {
	if err := checkPositive("Gamma", "shape", shape); err != nil {
		return Gamma{}, err
	}
	if err := checkPositive("Gamma", "scale", scale); err != nil {
		return Gamma{}, err
	}
	return Gamma{Shape: shape, Scale: scale}, nil
}

// Sample uses Marsaglia-Tsang squeeze for shape >= 1 and the boost
// Gamma(k) = Gamma(k+1) * U^(1/k) for shape < 1.
func (g Gamma) Sample(r *rng.Source) float64 {
	k := g.Shape
	boost := 1.0
	if k < 1 {
		boost = math.Pow(r.OpenFloat64(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.OpenFloat64()
		if u < 1-0.0331*x*x*x*x {
			return g.Scale * boost * d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return g.Scale * boost * d * v
		}
	}
}

func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

func (g Gamma) Variance() float64 { return g.Shape * g.Scale * g.Scale }

func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaP(g.Shape, x/g.Scale)
}

func (g Gamma) Quantile(p float64) float64 {
	checkQuantileP(p)
	return quantileByBisection(g.CDF, p, g.Mean())
}

func (g Gamma) String() string {
	return fmt.Sprintf("gamma(shape=%.6g, scale=%.6g)", g.Shape, g.Scale)
}

// ---------------------------------------------------------------------------
// Pareto

// Pareto is the type-I Pareto distribution on [Xm, inf) with tail index
// Alpha — the classic heavy-tail model for "most repairs are quick, a
// few take forever".
type Pareto struct {
	Xm    float64
	Alpha float64
}

// NewPareto returns a Pareto with minimum xm and tail index alpha.
func NewPareto(xm, alpha float64) (Pareto, error) {
	if err := checkPositive("Pareto", "xm", xm); err != nil {
		return Pareto{}, err
	}
	if err := checkPositive("Pareto", "alpha", alpha); err != nil {
		return Pareto{}, err
	}
	return Pareto{Xm: xm, Alpha: alpha}, nil
}

func (p Pareto) Sample(r *rng.Source) float64 {
	return p.Xm * math.Pow(r.OpenFloat64(), -1/p.Alpha)
}

func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) Variance() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	a := p.Alpha
	return p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}

func (p Pareto) CDF(x float64) float64 {
	if x <= p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

func (p Pareto) Quantile(q float64) float64 {
	checkQuantileP(q)
	return p.Xm * math.Pow(1-q, -1/p.Alpha)
}

func (p Pareto) String() string {
	return fmt.Sprintf("pareto(xm=%.6g, alpha=%.6g)", p.Xm, p.Alpha)
}

// ---------------------------------------------------------------------------
// Empirical

// Empirical replays an observed trace: each draw is one of the recorded
// values, chosen uniformly (sampling with replacement from the empirical
// distribution). This is the §4.4 "use the measured log directly" model.
type Empirical struct {
	values []float64 // sorted ascending
	mean   float64
	vari   float64
}

// NewEmpirical returns an Empirical over a copy of samples.
func NewEmpirical(samples []float64) (Empirical, error) {
	if len(samples) == 0 {
		return Empirical{}, fmt.Errorf("dist: Empirical needs at least one sample")
	}
	vs := make([]float64, len(samples))
	copy(vs, samples)
	var sum float64
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return Empirical{}, fmt.Errorf("dist: Empirical needs finite samples >= 0, got %v", v)
		}
		sum += v
	}
	sort.Float64s(vs)
	mean := sum / float64(len(vs))
	var ss float64
	for _, v := range vs {
		d := v - mean
		ss += d * d
	}
	return Empirical{values: vs, mean: mean, vari: ss / float64(len(vs))}, nil
}

// N returns the number of recorded values.
func (e Empirical) N() int { return len(e.values) }

func (e Empirical) Sample(r *rng.Source) float64 {
	return e.values[r.Intn(len(e.values))]
}

func (e Empirical) Mean() float64 { return e.mean }

func (e Empirical) Variance() float64 { return e.vari }

func (e Empirical) CDF(x float64) float64 {
	// Number of values <= x.
	n := sort.SearchFloat64s(e.values, x)
	for n < len(e.values) && e.values[n] == x {
		n++
	}
	return float64(n) / float64(len(e.values))
}

func (e Empirical) Quantile(p float64) float64 {
	checkQuantileP(p)
	// Smallest order statistic whose ECDF reaches p: rank k has
	// CDF >= (k+1)/n, so k = ceil(p*n) - 1.
	k := int(math.Ceil(p*float64(len(e.values)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(e.values) {
		k = len(e.values) - 1
	}
	return e.values[k]
}

func (e Empirical) String() string {
	parts := make([]string, len(e.values))
	for i, v := range e.values {
		parts[i] = fmt.Sprintf("%.6g", v)
	}
	return "empirical(" + strings.Join(parts, ", ") + ")"
}

// ---------------------------------------------------------------------------
// Mixture

// Component is one weighted branch of a Mixture.
type Component struct {
	Weight float64
	Dist   Dist
}

// Mixture is a finite mixture: a draw picks component i with probability
// proportional to its weight, then samples it. Mixtures express
// bimodal realities like "80% of repairs are a 2-hour hot swap, 20% wait
// a day for parts".
type Mixture struct {
	comps []Component // weights normalized to sum 1
	cum   []float64
}

// NewMixture returns a mixture over the given components. Weights must
// be positive; they are normalized to sum to 1.
func NewMixture(comps []Component) (Mixture, error) {
	if len(comps) == 0 {
		return Mixture{}, fmt.Errorf("dist: Mixture needs at least one component")
	}
	var total float64
	for i, c := range comps {
		if c.Dist == nil {
			return Mixture{}, fmt.Errorf("dist: Mixture component %d has nil distribution", i)
		}
		if err := checkPositive("Mixture", "weight", c.Weight); err != nil {
			return Mixture{}, err
		}
		total += c.Weight
	}
	m := Mixture{comps: make([]Component, len(comps)), cum: make([]float64, len(comps))}
	acc := 0.0
	for i, c := range comps {
		w := c.Weight / total
		m.comps[i] = Component{Weight: w, Dist: c.Dist}
		acc += w
		m.cum[i] = acc
	}
	m.cum[len(comps)-1] = 1 // guard against rounding
	return m, nil
}

// Components returns the normalized components.
func (m Mixture) Components() []Component {
	out := make([]Component, len(m.comps))
	copy(out, m.comps)
	return out
}

func (m Mixture) Sample(r *rng.Source) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.comps) {
		i = len(m.comps) - 1
	}
	return m.comps[i].Dist.Sample(r)
}

func (m Mixture) Mean() float64 {
	var mu float64
	for _, c := range m.comps {
		mu += c.Weight * c.Dist.Mean()
	}
	return mu
}

func (m Mixture) Variance() float64 {
	mu := m.Mean()
	var second float64
	for _, c := range m.comps {
		cm := c.Dist.Mean()
		if math.IsInf(cm, 0) || math.IsInf(c.Dist.Variance(), 0) {
			// A heavy-tailed component dominates: the mixture's second
			// moment diverges (avoid the Inf - Inf = NaN below).
			return math.Inf(1)
		}
		second += c.Weight * (c.Dist.Variance() + cm*cm)
	}
	return second - mu*mu
}

func (m Mixture) CDF(x float64) float64 {
	var f float64
	for _, c := range m.comps {
		f += c.Weight * c.Dist.CDF(x)
	}
	return f
}

func (m Mixture) Quantile(p float64) float64 {
	checkQuantileP(p)
	return quantileByBisection(m.CDF, p, m.Mean())
}

func (m Mixture) String() string {
	parts := make([]string, len(m.comps))
	for i, c := range m.comps {
		parts[i] = fmt.Sprintf("%.6g*%s", c.Weight, c.Dist.String())
	}
	return "mix(" + strings.Join(parts, ", ") + ")"
}

// ---------------------------------------------------------------------------
// Numeric helpers

// quantileByBisection inverts a monotone CDF numerically. hint seeds the
// upper-bracket search (any positive finite value works).
func quantileByBisection(cdf func(float64) float64, p float64, hint float64) float64 {
	if p <= 0 {
		return 0
	}
	hi := hint
	if !(hi > 0) || math.IsInf(hi, 0) || math.IsNaN(hi) {
		hi = 1
	}
	for cdf(hi) < p {
		hi *= 2
		if math.IsInf(hi, 0) {
			return hi
		}
	}
	lo := 0.0
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// normQuantile is the standard normal inverse CDF (Acklam's rational
// approximation refined with one Halley step against math.Erfc), good to
// ~1e-15 over (0, 1).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((-3.969683028665376e+01*r+2.209460984245205e+02)*r-2.759285104469687e+02)*r+1.383577518672690e+02)*r-3.066479806614716e+01)*r + 2.506628277459239e+00) * q /
			(((((-5.447609879822406e+01*r+1.615858368580409e+02)*r-1.556989798598866e+02)*r+6.680131188771972e+01)*r-1.328068155288572e+01)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	}
	// One Halley refinement.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// regIncGammaP is the regularized lower incomplete gamma function
// P(a, x), via the series expansion for x < a+1 and the continued
// fraction for x >= a+1 (Numerical Recipes 6.2).
func regIncGammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		lg, _ := math.Lgamma(a)
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a, x) = 1 - P(a, x).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return 1 - math.Exp(-x+a*math.Log(x)-lg)*h
}
