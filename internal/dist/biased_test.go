package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestHazardBiasedValidation(t *testing.T) {
	exp := Must(ExpMean(100))
	if _, err := NewHazardBiased(nil, 2); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := NewHazardBiased(exp, 0); err == nil {
		t.Error("zero bias accepted")
	}
	if _, err := NewHazardBiased(Must(NewDeterministic(5)), 2); err == nil {
		t.Error("deterministic distribution accepted")
	}
	if _, err := NewHazardBiased(exp, 2); err != nil {
		t.Errorf("valid wrapper rejected: %v", err)
	}
}

// TestHazardBiasedExponential pins the closed form: hazard-scaling an
// exponential by B gives an exponential with B times the rate.
func TestHazardBiasedExponential(t *testing.T) {
	const mean, bias = 100.0, 4.0
	h, err := NewHazardBiased(Must(ExpMean(mean)), bias)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += h.Sample(r)
	}
	got := sum / float64(n)
	want := mean / bias
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("biased exponential mean = %v, want ~%v", got, want)
	}
	// CDF matches the rate-scaled exponential.
	if got, want := h.CDF(10), 1-math.Exp(-10*bias/mean); math.Abs(got-want) > 1e-12 {
		t.Errorf("biased CDF(10) = %v, want %v", got, want)
	}
	// Quantile inverts CDF.
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got := h.CDF(h.Quantile(p)); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

// TestHazardBiasedUnbiasedReweighting checks the importance-sampling
// identity E_B[w·f(T)] = E[f(T)] for an indicator of an early failure —
// the quantity failure biasing exists to resolve.
func TestHazardBiasedUnbiasedReweighting(t *testing.T) {
	const mean, bias, cut = 1000.0, 5.0, 20.0
	base := Must(NewWeibull(0.9, mean))
	exact := base.CDF(cut)
	r := rng.New(17)
	n := 100000
	est := 0.0
	for i := 0; i < n; i++ {
		h, err := NewHazardBiased(base, bias)
		if err != nil {
			t.Fatal(err)
		}
		x := h.Sample(r)
		if x < cut {
			est += h.Weight()
		}
	}
	est /= float64(n)
	if math.Abs(est-exact)/exact > 0.05 {
		t.Errorf("IS estimate of P(T<%v) = %v, want ~%v", cut, est, exact)
	}
}

// TestHazardBiasedCensoring checks the censoring-aware weighting: draws
// beyond the remaining horizon contribute the bounded survival ratio,
// and the weight of an all-censored trajectory stays near 1.
func TestHazardBiasedCensoring(t *testing.T) {
	const mean, bias, horizon = 50000.0, 4.0, 100.0
	base := Must(ExpMean(mean))
	h, err := NewHazardBiased(base, bias)
	if err != nil {
		t.Fatal(err)
	}
	h.Now = func() float64 { return 0 }
	h.Horizon = horizon
	r := rng.New(23)
	for i := 0; i < 1000; i++ {
		if h.Sample(r) > horizon {
			continue
		}
	}
	// Censored factors are e^{(B-1)t/mean} <= e^{(B-1)·h/mean} ~ 1.006
	// each; completed factors ~1/B. The product must stay finite and
	// positive — no degeneracy.
	w := h.Weight()
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		t.Fatalf("censored weight degenerated: %v", w)
	}
	// A single censored draw has weight exactly S(horizon)^(1-B). (With
	// the biased mean at 12500h, a 100h horizon censors the first draw
	// with probability ~0.992; retry seeds until one censors.)
	want := math.Exp((1 - bias) * math.Log(1-base.CDF(horizon)))
	for seed := uint64(1); ; seed++ {
		h2, err := NewHazardBiased(base, bias)
		if err != nil {
			t.Fatal(err)
		}
		h2.Now = func() float64 { return 0 }
		h2.Horizon = horizon
		if h2.Sample(rng.New(seed)) <= horizon {
			continue
		}
		if math.Abs(h2.Weight()-want)/want > 1e-9 {
			t.Errorf("censored weight = %v, want %v", h2.Weight(), want)
		}
		break
	}
}
