package dist

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestParseFamilies(t *testing.T) {
	cases := []struct {
		spec string
		want Dist
	}{
		{"weibull(shape=0.7, scale=8760)", Must(NewWeibull(0.7, 8760))},
		{"weibull(0.7, 8760)", Must(NewWeibull(0.7, 8760))},
		{"WEIBULL( k = 0.7 , lambda = 8760 )", Must(NewWeibull(0.7, 8760))},
		{"lognormal(mu=2, sigma=0.8)", Must(NewLogNormal(2, 0.8))},
		{"lognormal(2, 0.8)", Must(NewLogNormal(2, 0.8))},
		{"lognormal(mean=12, cv=1.2)", Must(LogNormalFromMoments(12, 1.2))},
		{"exp(mean=500)", Must(ExpMean(500))},
		{"exponential(500)", Must(ExpMean(500))},
		{"exp(rate=0.002)", Exponential{Rate: 0.002}},
		{"det(12)", Must(NewDeterministic(12))},
		{"deterministic(value=12)", Must(NewDeterministic(12))},
		{"const(0)", Must(NewDeterministic(0))},
		{"gamma(shape=2, scale=5)", Must(NewGamma(2, 5))},
		{"pareto(xm=1, alpha=2.5)", Must(NewPareto(1, 2.5))},
		{"pareto(min=1, alpha=2.5)", Must(NewPareto(1, 2.5))},
		{"empirical(1, 2, 3.5)", Must(NewEmpirical([]float64{1, 2, 3.5}))},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got.String() != c.want.String() {
			t.Errorf("Parse(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestParseMixture(t *testing.T) {
	d, err := Parse("mix(0.8*exp(mean=2), 0.2*lognormal(mu=3, sigma=0.5))")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := d.(Mixture)
	if !ok {
		t.Fatalf("parsed %T, want Mixture", d)
	}
	comps := m.Components()
	if len(comps) != 2 {
		t.Fatalf("%d components, want 2", len(comps))
	}
	if math.Abs(comps[0].Weight-0.8) > 1e-12 {
		t.Errorf("first weight = %v, want 0.8", comps[0].Weight)
	}
	if _, ok := comps[1].Dist.(LogNormal); !ok {
		t.Errorf("second component is %T, want LogNormal", comps[1].Dist)
	}
	// Nested mixtures work too.
	if _, err := Parse("mix(1*mix(2*det(1), 1*det(4)), 3*exp(mean=9))"); err != nil {
		t.Errorf("nested mixture rejected: %v", err)
	}
}

// TestStringRoundTrips: every family's String() must parse back to an
// equivalent distribution.
func TestStringRoundTrips(t *testing.T) {
	mix := Must(NewMixture([]Component{
		{Weight: 0.8, Dist: Must(ExpMean(2))},
		{Weight: 0.2, Dist: Must(NewWeibull(0.7, 100))},
	}))
	dists := []Dist{
		Must(NewWeibull(0.7, 8760)),
		Must(NewLogNormal(2, 0.8)),
		Must(LogNormalFromMoments(12, 1.2)),
		Must(ExpMean(500)),
		Must(NewDeterministic(12)),
		Must(NewGamma(0.5, 10)),
		Must(NewPareto(2, 4)),
		Must(NewEmpirical([]float64{1, 2, 3.5})),
		mix,
	}
	for _, d := range dists {
		back, err := Parse(d.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", d.String(), err)
			continue
		}
		if back.String() != d.String() {
			t.Errorf("round trip drifted: %q -> %q", d.String(), back.String())
		}
		// String() rounds to 6 significant digits, so the round trip is
		// near-exact, not bit-exact.
		if math.Abs(back.Mean()-d.Mean()) > 1e-4*(1+math.Abs(d.Mean())) {
			t.Errorf("round trip changed mean: %v -> %v", d.Mean(), back.Mean())
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"weibull",
		"weibull(",
		"weibull)",
		"weibull()",
		"weibull(shape=0.7)",
		"weibull(shape=0.7, scale=0)",
		"weibull(shape=0.7, scale=1) trailing",
		"frechet(1, 2)",
		"exp(mean=abc)",
		"exp(mean=)",
		"mix()",
		"mix(exp(mean=1))",
		"mix(0.5*exp(mean=1), 0.5)",
		"empirical()",
		"empirical(a=1)",
		"det(0.5*exp(mean=1))",
		"lognormal(mean=12)",
	}
	for _, s := range bad {
		if d, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted: %v", s, d)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	type carrier struct {
		TTF    Spec `json:"ttf"`
		Repair Spec `json:"repair"`
	}
	in := `{"ttf": "weibull(shape=0.7, scale=8760)", "repair": "lognormal(mean=12, cv=1.2)"}`
	var c carrier
	if err := json.Unmarshal([]byte(in), &c); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.TTF.Dist.(Weibull); !ok {
		t.Fatalf("ttf decoded as %T", c.TTF.Dist)
	}
	if math.Abs(c.Repair.Mean()-12) > 1e-9 {
		t.Errorf("repair mean = %v, want 12", c.Repair.Mean())
	}
	out, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back carrier
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.TTF.String() != c.TTF.String() || back.Repair.String() != c.Repair.String() {
		t.Errorf("JSON round trip drifted: %s", out)
	}
}

func TestSpecJSONNullAndErrors(t *testing.T) {
	var s Spec
	if err := json.Unmarshal([]byte("null"), &s); err != nil || s.Dist != nil {
		t.Errorf("null: %v, %v", s.Dist, err)
	}
	if b, err := json.Marshal(Spec{}); err != nil || string(b) != "null" {
		t.Errorf("empty spec marshal = %s, %v", b, err)
	}
	if err := json.Unmarshal([]byte(`"nope(1)"`), &s); err == nil {
		t.Error("unknown family accepted via JSON")
	}
	if err := json.Unmarshal([]byte(`42`), &s); err == nil {
		t.Error("non-string spec accepted")
	}
	if !strings.Contains(mustErr(t, `"weibull(0, 1)"`).Error(), "shape") {
		t.Error("constructor error not propagated through JSON")
	}
}

func mustErr(t *testing.T, jsonSpec string) error {
	t.Helper()
	var s Spec
	err := json.Unmarshal([]byte(jsonSpec), &s)
	if err == nil {
		t.Fatalf("expected error for %s", jsonSpec)
	}
	return err
}
