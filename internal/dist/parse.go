package dist

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Parse turns a declarative spec string into a distribution. The
// grammar (whitespace-insensitive, case-insensitive family names):
//
//	spec     := family '(' args ')'
//	args     := [arg (',' arg)*]
//	arg      := key '=' number | number | weight '*' spec
//
// Families and their parameters (positional order in brackets):
//
//	weibull(shape, scale)                 [shape, scale]
//	lognormal(mu, sigma) | lognormal(mean=, cv=)
//	exp(mean) | exponential(mean= | rate=)
//	det(value) | deterministic(value)
//	gamma(shape, scale)
//	pareto(xm, alpha)                     (min= accepted for xm)
//	empirical(v1, v2, ...)                trace replay of listed values
//	mix(w1*spec1, w2*spec2, ...)          finite mixture
//
// Every Dist's String() is re-parseable, so specs round-trip.
func Parse(s string) (Dist, error) {
	p := &parser{input: s}
	d, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("dist: trailing garbage at %q", p.input[p.pos:])
	}
	return d, nil
}

type parser struct {
	input string
	pos   int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.input) || p.input[p.pos] != c {
		return fmt.Errorf("dist: expected %q at offset %d in %q", string(c), p.pos, p.input)
	}
	p.pos++
	return nil
}

func (p *parser) peek() (byte, bool) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return 0, false
	}
	return p.input[p.pos], true
}

func (p *parser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
			p.pos++
		} else {
			break
		}
	}
	return strings.ToLower(p.input[start:p.pos])
}

func (p *parser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c >= '0' && c <= '9' || c == '.' || c == '-' || c == '+' ||
			c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, fmt.Errorf("dist: expected a number at offset %d in %q", start, p.input)
	}
	v, err := strconv.ParseFloat(p.input[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("dist: bad number %q: %w", p.input[start:p.pos], err)
	}
	return v, nil
}

// arg is one parsed argument: either key=value, a bare value, or a
// weighted sub-spec for mixtures.
type arg struct {
	key   string
	value float64
	sub   Dist // non-nil for weight*spec arguments
}

func (p *parser) parseSpec() (Dist, error) {
	name := p.ident()
	if name == "" {
		return nil, fmt.Errorf("dist: expected a family name at offset %d in %q", p.pos, p.input)
	}
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var args []arg
	if c, ok := p.peek(); ok && c != ')' {
		for {
			a, err := p.parseArg()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			c, ok := p.peek()
			if !ok {
				return nil, fmt.Errorf("dist: unterminated argument list in %q", p.input)
			}
			if c == ',' {
				p.pos++
				continue
			}
			break
		}
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return build(name, args)
}

func (p *parser) parseArg() (arg, error) {
	p.skipSpace()
	// key=value?
	save := p.pos
	if id := p.ident(); id != "" {
		if c, ok := p.peek(); ok && c == '=' {
			p.pos++
			v, err := p.number()
			if err != nil {
				return arg{}, err
			}
			return arg{key: id, value: v}, nil
		}
		p.pos = save // not key=..., rewind
	}
	v, err := p.number()
	if err != nil {
		return arg{}, err
	}
	// weight*spec?
	if c, ok := p.peek(); ok && c == '*' {
		p.pos++
		d, err := p.parseSpec()
		if err != nil {
			return arg{}, err
		}
		return arg{value: v, sub: d}, nil
	}
	return arg{value: v}, nil
}

// params views an argument list as name->value with positional
// fallback.
type params struct {
	family string
	args   []arg
}

// get fetches a parameter by any of its accepted names, falling back to
// the positional slot pos.
func (ps params) get(pos int, names ...string) (float64, error) {
	for _, a := range ps.args {
		for _, n := range names {
			if a.key == n {
				return a.value, nil
			}
		}
	}
	if pos < len(ps.args) && ps.args[pos].key == "" && ps.args[pos].sub == nil {
		return ps.args[pos].value, nil
	}
	return 0, fmt.Errorf("dist: %s spec missing parameter %q", ps.family, names[0])
}

// has reports whether any of the names appears as an explicit key.
func (ps params) has(names ...string) bool {
	for _, a := range ps.args {
		for _, n := range names {
			if a.key == n {
				return true
			}
		}
	}
	return false
}

func build(name string, args []arg) (Dist, error) {
	ps := params{family: name, args: args}
	for _, a := range args {
		if a.sub != nil && name != "mix" && name != "mixture" {
			return nil, fmt.Errorf("dist: weighted components are only valid inside mix(...), not %s(...)", name)
		}
	}
	switch name {
	case "weibull":
		shape, err := ps.get(0, "shape", "k")
		if err != nil {
			return nil, err
		}
		scale, err := ps.get(1, "scale", "lambda")
		if err != nil {
			return nil, err
		}
		return NewWeibull(shape, scale)
	case "lognormal", "lognorm":
		if ps.has("mean", "cv") {
			mean, err := ps.get(0, "mean")
			if err != nil {
				return nil, err
			}
			cv, err := ps.get(1, "cv")
			if err != nil {
				return nil, err
			}
			return LogNormalFromMoments(mean, cv)
		}
		mu, err := ps.get(0, "mu")
		if err != nil {
			return nil, err
		}
		sigma, err := ps.get(1, "sigma")
		if err != nil {
			return nil, err
		}
		return NewLogNormal(mu, sigma)
	case "exp", "exponential":
		if ps.has("rate") {
			rate, err := ps.get(0, "rate")
			if err != nil {
				return nil, err
			}
			if rate <= 0 {
				return nil, fmt.Errorf("dist: exponential needs rate > 0, got %v", rate)
			}
			return Exponential{Rate: rate}, nil
		}
		mean, err := ps.get(0, "mean")
		if err != nil {
			return nil, err
		}
		return ExpMean(mean)
	case "det", "deterministic", "const":
		v, err := ps.get(0, "value")
		if err != nil {
			return nil, err
		}
		return NewDeterministic(v)
	case "gamma":
		shape, err := ps.get(0, "shape", "k")
		if err != nil {
			return nil, err
		}
		scale, err := ps.get(1, "scale", "theta")
		if err != nil {
			return nil, err
		}
		return NewGamma(shape, scale)
	case "pareto":
		xm, err := ps.get(0, "xm", "min")
		if err != nil {
			return nil, err
		}
		alpha, err := ps.get(1, "alpha")
		if err != nil {
			return nil, err
		}
		return NewPareto(xm, alpha)
	case "empirical":
		if len(args) == 0 {
			return nil, fmt.Errorf("dist: empirical spec needs at least one value")
		}
		vs := make([]float64, len(args))
		for i, a := range args {
			if a.key != "" || a.sub != nil {
				return nil, fmt.Errorf("dist: empirical spec takes bare values only")
			}
			vs[i] = a.value
		}
		return NewEmpirical(vs)
	case "mix", "mixture":
		if len(args) == 0 {
			return nil, fmt.Errorf("dist: mix spec needs at least one weight*spec component")
		}
		comps := make([]Component, len(args))
		for i, a := range args {
			if a.sub == nil {
				return nil, fmt.Errorf("dist: mix component %d must be weight*spec", i)
			}
			comps[i] = Component{Weight: a.value, Dist: a.sub}
		}
		return NewMixture(comps)
	default:
		return nil, fmt.Errorf("dist: unknown family %q (want weibull, lognormal, exp, det, gamma, pareto, empirical, or mix)", name)
	}
}

// Spec wraps a Dist for JSON (de)serialization: it marshals to the spec
// string and unmarshals from one, so scenario files and hardware
// catalogs can declare arbitrary failure models as plain strings.
type Spec struct {
	Dist
}

// NewSpec wraps d.
func NewSpec(d Dist) Spec { return Spec{Dist: d} }

// MarshalJSON encodes the spec-grammar string, or null for an empty
// Spec.
func (s Spec) MarshalJSON() ([]byte, error) {
	if s.Dist == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.Dist.String())
}

// UnmarshalJSON decodes a spec-grammar string (or null).
func (s *Spec) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		s.Dist = nil
		return nil
	}
	var str string
	if err := json.Unmarshal(data, &str); err != nil {
		return fmt.Errorf("dist: spec must be a JSON string: %w", err)
	}
	d, err := Parse(str)
	if err != nil {
		return err
	}
	s.Dist = d
	return nil
}
