package dist

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// HazardBiased wraps a continuous distribution with its hazard rate
// scaled by a constant factor B (failure-biased importance sampling,
// §4.2): the biased survival function is S_B(t) = S(t)^B, so B > 1 makes
// failures arrive earlier and rare multi-failure windows common, while
// the accumulated likelihood ratio re-weights each trajectory back to
// the original measure. The per-draw Radon–Nikodym factor is
//
//	f(t) / f_B(t) = S(t)^(1-B) / B
//
// and Sample accumulates its logarithm; Weight() returns the product
// over all draws made so far, the unbiased importance weight for the
// trial that consumed them.
//
// The wrapper is exact for continuous distributions (Weibull, LogNormal,
// exponential, Gamma, Pareto, mixtures of those). Distributions with
// atoms (Deterministic, Empirical) have no density, so hazard scaling is
// rejected for Deterministic and approximate for Empirical.
//
// A HazardBiased is stateful (it accumulates the log likelihood ratio)
// and therefore NOT safe for concurrent use: build one instance per
// trial.
type HazardBiased struct {
	D    Dist
	Bias float64

	// Now and Horizon, when set, enable censoring-aware weighting: a
	// draw landing beyond the remaining horizon (Horizon - Now()) cannot
	// fire inside the simulated window, so the trajectory depends only
	// on the censoring indicator and the correct likelihood factor is
	// the bounded survival ratio S(rem)^(1-B) instead of the full-draw
	// density ratio. This keeps every factor bounded (the full-draw
	// ratio S(t)^(1-B)/B has infinite second moment for Bias >= 2) and
	// collapses the weight variance for the rare-failure scenarios the
	// bias exists for.
	Now     func() float64
	Horizon float64

	logLR float64
	draws int64
}

// NewHazardBiased validates and constructs the wrapper.
func NewHazardBiased(d Dist, bias float64) (*HazardBiased, error) {
	if d == nil {
		return nil, fmt.Errorf("dist: hazard bias needs a distribution")
	}
	if err := checkPositive("hazard bias", "bias", bias); err != nil {
		return nil, err
	}
	if _, ok := d.(Deterministic); ok {
		return nil, fmt.Errorf("dist: hazard bias is undefined for a deterministic distribution")
	}
	return &HazardBiased{D: d, Bias: bias}, nil
}

// Sample draws from the biased distribution via inverse transform on the
// powered survival function and accumulates the log likelihood ratio
// (censored at the remaining horizon when Now/Horizon are wired).
func (h *HazardBiased) Sample(r *rng.Source) float64 {
	u := r.OpenFloat64()
	// Target survival level: S(t) = u^(1/B). Drawn in log space so the
	// likelihood-ratio exponent stays exact even for tiny survivals.
	logS := math.Log(u) / h.Bias
	p := 1 - math.Exp(logS)
	if p >= 1 {
		p = math.Nextafter(1, 0)
	}
	if p < 0 {
		p = 0
	}
	t := h.D.Quantile(p)
	h.draws++
	if h.Now != nil && h.Horizon > 0 {
		if rem := h.Horizon - h.Now(); t > rem {
			// Censored draw: only "no failure before the horizon" is
			// observable, with likelihood ratio S(rem)^(1-B).
			logSrem := 0.0
			if rem > 0 {
				if s := 1 - h.D.CDF(rem); s > 0 {
					logSrem = math.Log(s)
				}
			}
			h.logLR += (1 - h.Bias) * logSrem
			return t
		}
	}
	h.logLR += -math.Log(h.Bias) - (h.Bias-1)*logS
	return t
}

// LogLR returns the accumulated log likelihood ratio over all draws.
func (h *HazardBiased) LogLR() float64 { return h.logLR }

// Weight returns the importance weight exp(LogLR) for the trajectory
// that consumed the draws so far. The exponent is clamped to ±350 so a
// pathological bias configuration yields an (astronomically large or
// small but) finite weight whose SQUARE also stays finite — the
// weighted estimators accumulate w², and exp(355)² already overflows
// float64, which would turn effective-sample-size and CI reports into
// NaN.
func (h *HazardBiased) Weight() float64 {
	lr := h.logLR
	if lr > 350 {
		lr = 350
	}
	if lr < -350 {
		lr = -350
	}
	return math.Exp(lr)
}

// Draws returns the number of biased draws made.
func (h *HazardBiased) Draws() int64 { return h.draws }

// Reset clears the accumulated likelihood ratio and draw count.
func (h *HazardBiased) Reset() { h.logLR = 0; h.draws = 0 }

// Mean returns the biased mean, computed by quantile-grid integration
// (the biased family has no closed form for general D).
func (h *HazardBiased) Mean() float64 {
	const grid = 4096
	sum := 0.0
	for i := 0; i < grid; i++ {
		p := (float64(i) + 0.5) / grid
		sum += h.Quantile(p)
	}
	return sum / grid
}

// Variance returns the biased variance by quantile-grid integration.
func (h *HazardBiased) Variance() float64 {
	const grid = 4096
	mean := h.Mean()
	sum := 0.0
	for i := 0; i < grid; i++ {
		p := (float64(i) + 0.5) / grid
		d := h.Quantile(p) - mean
		sum += d * d
	}
	return sum / grid
}

// CDF returns 1 - S(x)^B.
func (h *HazardBiased) CDF(x float64) float64 {
	s := 1 - h.D.CDF(x)
	return 1 - math.Pow(s, h.Bias)
}

// Quantile inverts the biased CDF: Q(1 - (1-p)^(1/B)).
func (h *HazardBiased) Quantile(p float64) float64 {
	checkQuantileP(p)
	q := 1 - math.Pow(1-p, 1/h.Bias)
	if q >= 1 {
		q = math.Nextafter(1, 0)
	}
	return h.D.Quantile(q)
}

// String describes the wrapper. It is diagnostic only — the runner
// constructs HazardBiased programmatically, so Parse does not accept it.
func (h *HazardBiased) String() string {
	return fmt.Sprintf("hazardbias(bias=%g, %s)", h.Bias, h.D)
}
