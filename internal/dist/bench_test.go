package dist

import (
	"testing"

	"repro/internal/rng"
)

// BenchmarkDistSample is the sampling hot-path baseline: every
// simulated failure, repair, arrival and service demand draws from one
// of these. Run with:
//
//	go test -bench=DistSample -benchmem ./internal/dist
func BenchmarkDistSample(b *testing.B) {
	mix := Must(NewMixture([]Component{
		{Weight: 0.8, Dist: Must(ExpMean(2))},
		{Weight: 0.2, Dist: Must(NewLogNormal(3, 0.5))},
	}))
	emp := Must(NewEmpirical(func() []float64 {
		r := rng.New(99)
		xs := make([]float64, 10_000)
		e := Must(ExpMean(12))
		for i := range xs {
			xs[i] = e.Sample(r)
		}
		return xs
	}()))
	cases := []struct {
		name string
		d    Dist
	}{
		{"weibull", Must(NewWeibull(0.7, 1500))},
		{"lognormal", Must(NewLogNormal(2.0, 0.8))},
		{"exponential", Must(ExpMean(500))},
		{"deterministic", Must(NewDeterministic(12))},
		{"gamma", Must(NewGamma(0.5, 10))},
		{"pareto", Must(NewPareto(2, 4))},
		{"empirical", emp},
		{"mixture", mix},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			r := rng.New(1)
			var sink float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += c.d.Sample(r)
			}
			benchSink = sink
		})
	}
}

// BenchmarkFitBest measures one full calibration pass over a 5000-point
// duration sample.
func BenchmarkFitBest(b *testing.B) {
	r := rng.New(7)
	truth := Must(NewWeibull(0.7, 1500))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = truth.Sample(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fits := FitBest(xs); len(fits) == 0 {
			b.Fatal("no fits")
		}
	}
}

// BenchmarkParse measures spec-string parsing (scenario-load path).
func BenchmarkParse(b *testing.B) {
	const spec = "mix(0.8*exp(mean=2), 0.2*weibull(shape=0.7, scale=100))"
	for i := 0; i < b.N; i++ {
		if _, err := Parse(spec); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink float64
