package dist

import (
	"fmt"
	"math"
	"sort"
)

// FitResult is one candidate family fitted to a duration sample. A
// family whose estimator could not converge on the sample is kept in
// the ranking with Err set (and sorts last).
type FitResult struct {
	Name   string  // family name ("weibull", "lognormal", ...)
	Dist   Dist    // fitted distribution (value type, assertable); nil if Err != nil
	Err    error   // non-nil when the family could not be fitted
	LogLik float64 // maximized log-likelihood
	AIC    float64 // Akaike information criterion (2k - 2 LogLik)
	KS     float64 // Kolmogorov-Smirnov statistic vs. the sample
	PValue float64 // asymptotic KS p-value (0 = certainly not this family)
}

// failed marks a family as unfittable on this sample.
func failed(name string, err error) FitResult {
	return FitResult{Name: name, Err: err, KS: math.Inf(1), AIC: math.Inf(1), LogLik: math.Inf(-1)}
}

// FitBest fits every candidate family to samples by maximum likelihood
// (moment matching where the MLE needs a fallback) and returns the
// results ranked best-first by Kolmogorov-Smirnov distance. This is the
// §4.4/§4.5 "transformation algorithm": operational-log durations in,
// calibrated simulator models out.
//
// Samples must be positive; non-positive values are dropped with the
// families that cannot support them. An empty or degenerate (constant)
// sample yields a deterministic fit only.
func FitBest(samples []float64) []FitResult {
	xs := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0 {
			xs = append(xs, v)
		}
	}
	if len(xs) == 0 {
		return nil
	}
	sort.Float64s(xs)
	n := float64(len(xs))

	var sum, sumLog float64
	for _, x := range xs {
		sum += x
		sumLog += math.Log(x)
	}
	mean := sum / n
	meanLog := sumLog / n
	var ss, ssLog float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
		dl := math.Log(x) - meanLog
		ssLog += dl * dl
	}
	variance := ss / n

	// Degenerate sample: every family below needs spread.
	if variance <= 1e-12*mean*mean {
		det := Deterministic{Value: mean}
		return []FitResult{finish("deterministic", det, 1, 0, xs)}
	}

	var fits []FitResult

	// Exponential: MLE rate = 1/mean.
	{
		e := Exponential{Rate: 1 / mean}
		ll := -n*math.Log(mean) - n
		fits = append(fits, finish("exponential", e, 1, ll, xs))
	}

	// LogNormal: MLE mu = mean(log x), sigma^2 = var(log x).
	if sigma := math.Sqrt(ssLog / n); sigma > 0 {
		l := LogNormal{Mu: meanLog, Sigma: sigma}
		ll := -sumLog - n*math.Log(sigma*math.Sqrt(2*math.Pi)) - n/2
		fits = append(fits, finish("lognormal", l, 2, ll, xs))
	} else {
		fits = append(fits, failed("lognormal", fmt.Errorf("dist: zero log-space variance")))
	}

	// Weibull: profile MLE for the shape, closed form for the scale.
	if w, err := weibullMLE(xs, meanLog); err == nil {
		k, lam := w.Shape, w.Scale
		var sumPow float64
		for _, x := range xs {
			sumPow += math.Pow(x/lam, k)
		}
		ll := n*math.Log(k) - n*k*math.Log(lam) + (k-1)*sumLog - sumPow
		fits = append(fits, finish("weibull", w, 2, ll, xs))
	} else {
		fits = append(fits, failed("weibull", err))
	}

	// Gamma: MLE shape via ln k - digamma(k) = ln(mean) - mean(ln x).
	if g, err := gammaMLE(mean, meanLog); err == nil {
		k, th := g.Shape, g.Scale
		lg, _ := math.Lgamma(k)
		ll := (k-1)*sumLog - sum/th - n*k*math.Log(th) - n*lg
		fits = append(fits, finish("gamma", g, 2, ll, xs))
	} else {
		fits = append(fits, failed("gamma", err))
	}

	// Pareto: MLE xm = min(x), alpha = n / sum log(x/xm).
	if xm := xs[0]; sumLog-n*math.Log(xm) > 0 {
		alpha := n / (sumLog - n*math.Log(xm))
		p := Pareto{Xm: xm, Alpha: alpha}
		ll := n*math.Log(alpha) + n*alpha*math.Log(xm) - (alpha+1)*sumLog
		fits = append(fits, finish("pareto", p, 2, ll, xs))
	} else {
		fits = append(fits, failed("pareto", fmt.Errorf("dist: degenerate tail estimate")))
	}

	sort.SliceStable(fits, func(i, j int) bool { return fits[i].KS < fits[j].KS })
	return fits
}

// finish computes the goodness-of-fit scores for a fitted candidate.
// xs must be sorted ascending.
func finish(name string, d Dist, params int, logLik float64, xs []float64) FitResult {
	ks := ksStatistic(d, xs)
	return FitResult{
		Name:   name,
		Dist:   d,
		LogLik: logLik,
		AIC:    2*float64(params) - 2*logLik,
		KS:     ks,
		PValue: ksPValue(ks, len(xs)),
	}
}

// ksStatistic is the one-sample Kolmogorov-Smirnov distance between the
// fitted CDF and the empirical CDF of the sorted sample.
func ksStatistic(d Dist, xs []float64) float64 {
	n := float64(len(xs))
	var worst float64
	for i, x := range xs {
		f := d.CDF(x)
		if up := float64(i+1)/n - f; up > worst {
			worst = up
		}
		if down := f - float64(i)/n; down > worst {
			worst = down
		}
	}
	return worst
}

// ksPValue is the asymptotic Kolmogorov distribution tail probability
// with the Stephens small-sample correction.
func ksPValue(d float64, n int) float64 {
	if d <= 0 {
		return 1
	}
	sn := math.Sqrt(float64(n))
	t := (sn + 0.12 + 0.11/sn) * d
	var p float64
	for j := 1; j <= 100; j++ {
		term := 2 * math.Pow(-1, float64(j-1)) * math.Exp(-2*float64(j*j)*t*t)
		p += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	return math.Min(1, math.Max(0, p))
}

// weibullMLE solves the profile-likelihood shape equation
//
//	sum x^k log x / sum x^k - 1/k - mean(log x) = 0
//
// by bisection (the left side is strictly increasing in k), then sets
// scale = (mean(x^k))^(1/k). Values are normalized by the sample
// geometric mean to keep x^k in range.
func weibullMLE(xs []float64, meanLog float64) (Weibull, error) {
	geo := math.Exp(meanLog)
	norm := make([]float64, len(xs))
	for i, x := range xs {
		norm[i] = x / geo
	}
	g := func(k float64) float64 {
		var sp, spl float64
		for _, z := range norm {
			p := math.Pow(z, k)
			sp += p
			spl += p * math.Log(z)
		}
		// log z is already centered: mean(log z) = 0.
		return spl/sp - 1/k
	}
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 {
		hi *= 2
		if hi > 1e6 {
			return Weibull{}, fmt.Errorf("dist: weibull shape estimate diverged")
		}
	}
	if g(lo) > 0 {
		return Weibull{}, fmt.Errorf("dist: weibull shape estimate below %v", lo)
	}
	for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	var sp float64
	for _, z := range norm {
		sp += math.Pow(z, k)
	}
	scale := geo * math.Pow(sp/float64(len(norm)), 1/k)
	return NewWeibull(k, scale)
}

// gammaMLE solves log k - digamma(k) = log(mean) - mean(log x) by
// bisection (the left side is strictly decreasing in k).
func gammaMLE(mean, meanLog float64) (Gamma, error) {
	s := math.Log(mean) - meanLog
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return Gamma{}, fmt.Errorf("dist: gamma moment gap %v not positive", s)
	}
	f := func(k float64) float64 { return math.Log(k) - digamma(k) - s }
	lo, hi := 1e-6, 1.0
	for f(hi) > 0 {
		hi *= 2
		if hi > 1e9 {
			return Gamma{}, fmt.Errorf("dist: gamma shape estimate diverged")
		}
	}
	for f(lo) < 0 {
		lo /= 2
		if lo < 1e-12 {
			return Gamma{}, fmt.Errorf("dist: gamma shape estimate vanished")
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	return NewGamma(k, mean/k)
}

// digamma is the logarithmic derivative of the gamma function, via
// upward recurrence into the asymptotic series.
func digamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	var result float64
	for x < 12 {
		result -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - inv/2 -
		inv2*(1.0/12-inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2/132))))
	return result
}

// FitSummary renders fits as an aligned table, best first — handy for
// CLI reporting.
func FitSummary(fits []FitResult) string {
	if len(fits) == 0 {
		return "(no fits)"
	}
	out := fmt.Sprintf("%-14s %-36s %10s %10s %12s\n", "family", "fit", "KS", "p-value", "AIC")
	for _, f := range fits {
		if f.Err != nil {
			out += fmt.Sprintf("%-14s fit failed: %v\n", f.Name, f.Err)
			continue
		}
		out += fmt.Sprintf("%-14s %-36s %10.4f %10.3f %12.1f\n", f.Name, f.Dist.String(), f.KS, f.PValue, f.AIC)
	}
	return out
}
