package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// momentCase pairs a distribution with a deterministic sampling seed.
// Tolerances are relative and sized for n = 200k draws: the standard
// error of the sample mean is sqrt(var/n), and the variance estimator is
// noisier for heavy-tailed families, so those get a wider band.
type momentCase struct {
	name    string
	d       Dist
	seed    uint64
	meanTol float64
	varTol  float64
}

const momentDraws = 200_000

func momentCases(t *testing.T) []momentCase {
	t.Helper()
	emp, err := NewEmpirical([]float64{1, 1, 2, 3, 5, 8, 13})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := NewMixture([]Component{
		{Weight: 0.8, Dist: Must(ExpMean(2))},
		{Weight: 0.2, Dist: Must(NewLogNormal(3, 0.5))},
	})
	if err != nil {
		t.Fatal(err)
	}
	return []momentCase{
		{"weibull-infant", Must(NewWeibull(0.7, 1500)), 1, 0.02, 0.05},
		{"weibull-wearout", Must(NewWeibull(2.5, 100)), 2, 0.01, 0.03},
		{"lognormal", Must(NewLogNormal(2.0, 0.8)), 3, 0.01, 0.06},
		{"lognormal-moments", Must(LogNormalFromMoments(12, 1.2)), 4, 0.01, 0.08},
		{"exponential", Must(ExpMean(500)), 5, 0.01, 0.03},
		{"deterministic", Must(NewDeterministic(12)), 6, 1e-12, 1e-12},
		{"gamma-sub1", Must(NewGamma(0.5, 10)), 7, 0.01, 0.04},
		{"gamma-super1", Must(NewGamma(4, 2.5)), 8, 0.01, 0.03},
		{"pareto", Must(NewPareto(2, 4)), 9, 0.01, 0.25},
		{"empirical", emp, 10, 0.01, 0.03},
		{"mixture", mix, 11, 0.01, 0.05},
	}
}

// TestMomentMatching draws momentDraws variates per family with a fixed
// seed and checks the sample mean and variance against the analytic
// Mean()/Variance().
func TestMomentMatching(t *testing.T) {
	for _, c := range momentCases(t) {
		t.Run(c.name, func(t *testing.T) {
			r := rng.New(c.seed)
			var sum, sumSq float64
			for i := 0; i < momentDraws; i++ {
				v := c.d.Sample(r)
				if math.IsNaN(v) || v < 0 {
					t.Fatalf("draw %d = %v", i, v)
				}
				sum += v
				sumSq += v * v
			}
			n := float64(momentDraws)
			gotMean := sum / n
			gotVar := sumSq/n - gotMean*gotMean
			wantMean, wantVar := c.d.Mean(), c.d.Variance()
			if relErr(gotMean, wantMean) > c.meanTol {
				t.Errorf("sample mean = %v, analytic = %v (rel err %.4f > %v)",
					gotMean, wantMean, relErr(gotMean, wantMean), c.meanTol)
			}
			if relErr(gotVar, wantVar) > c.varTol {
				t.Errorf("sample variance = %v, analytic = %v (rel err %.4f > %v)",
					gotVar, wantVar, relErr(gotVar, wantVar), c.varTol)
			}
		})
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestSamplingIsDeterministic: the same seed must reproduce the exact
// draw sequence — the wind tunnel's reproducibility contract.
func TestSamplingIsDeterministic(t *testing.T) {
	for _, c := range momentCases(t) {
		a, b := rng.New(c.seed), rng.New(c.seed)
		for i := 0; i < 1000; i++ {
			if va, vb := c.d.Sample(a), c.d.Sample(b); va != vb {
				t.Fatalf("%s: draw %d differs under identical seeds: %v vs %v", c.name, i, va, vb)
			}
		}
	}
}

// TestQuantileInvertsCDF checks Quantile(CDF(x)) ~ x on the continuous
// families and CDF(Quantile(p)) >= p everywhere.
func TestQuantileInvertsCDF(t *testing.T) {
	continuous := []Dist{
		Must(NewWeibull(0.7, 1500)),
		Must(NewLogNormal(2.0, 0.8)),
		Must(ExpMean(500)),
		Must(NewGamma(0.5, 10)),
		Must(NewGamma(4, 2.5)),
		Must(NewPareto(2, 4)),
	}
	ps := []float64{0.001, 0.03, 0.25, 0.5, 0.75, 0.95, 0.999}
	for _, d := range continuous {
		for _, p := range ps {
			x := d.Quantile(p)
			back := d.CDF(x)
			if math.Abs(back-p) > 1e-6 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", d, p, back)
			}
		}
	}
	// Discrete/degenerate families: only the inequality holds.
	others := []Dist{Must(NewDeterministic(12)), mustEmp(t)}
	for _, d := range others {
		for _, p := range ps {
			if got := d.CDF(d.Quantile(p)); got < p {
				t.Errorf("%s: CDF(Quantile(%v)) = %v < p", d, p, got)
			}
		}
	}
}

func mustEmp(t *testing.T) Empirical {
	t.Helper()
	e, err := NewEmpirical([]float64{1, 1, 2, 3, 5, 8, 13})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCDFIsMonotoneFrom0To1 sweeps each CDF across its support.
func TestCDFIsMonotoneFrom0To1(t *testing.T) {
	for _, c := range momentCases(t) {
		prev := -1.0
		hi := c.d.Mean() * 10
		if math.IsInf(hi, 0) {
			hi = 1e6
		}
		for i := 0; i <= 400; i++ {
			x := hi * float64(i) / 400
			f := c.d.CDF(x)
			if f < prev-1e-12 || f < 0 || f > 1 {
				t.Fatalf("%s: CDF not monotone in [0,1] at x=%v: %v after %v", c.name, x, f, prev)
			}
			prev = f
		}
		if c.d.CDF(-1) != 0 {
			t.Errorf("%s: CDF(-1) = %v, want 0", c.name, c.d.CDF(-1))
		}
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	w := Must(NewWeibull(1, 500))
	e := Must(ExpMean(500))
	for _, x := range []float64{1, 10, 100, 500, 2000} {
		if math.Abs(w.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Errorf("Weibull(1, 500) and Exp(500) CDFs differ at %v", x)
		}
	}
	if math.Abs(w.Mean()-500) > 1e-9 {
		t.Errorf("Weibull(1, 500) mean = %v", w.Mean())
	}
}

func TestLogNormalFromMomentsMatchesRequested(t *testing.T) {
	l := Must(LogNormalFromMoments(12, 1.2))
	if math.Abs(l.Mean()-12)/12 > 1e-12 {
		t.Errorf("mean = %v, want 12", l.Mean())
	}
	cv := math.Sqrt(l.Variance()) / l.Mean()
	if math.Abs(cv-1.2) > 1e-9 {
		t.Errorf("cv = %v, want 1.2", cv)
	}
}

func TestParetoInfiniteMoments(t *testing.T) {
	if m := Must(NewPareto(1, 0.9)).Mean(); !math.IsInf(m, 1) {
		t.Errorf("Pareto(alpha=0.9) mean = %v, want +Inf", m)
	}
	if v := Must(NewPareto(1, 1.5)).Variance(); !math.IsInf(v, 1) {
		t.Errorf("Pareto(alpha=1.5) variance = %v, want +Inf", v)
	}
}

func TestConstructorValidation(t *testing.T) {
	bad := []func() error{
		func() error { _, err := NewWeibull(0, 1); return err },
		func() error { _, err := NewWeibull(1, -1); return err },
		func() error { _, err := NewWeibull(math.NaN(), 1); return err },
		func() error { _, err := NewLogNormal(math.Inf(1), 1); return err },
		func() error { _, err := NewLogNormal(0, 0); return err },
		func() error { _, err := LogNormalFromMoments(-1, 1); return err },
		func() error { _, err := LogNormalFromMoments(1, 0); return err },
		func() error { _, err := ExpMean(0); return err },
		func() error { _, err := NewDeterministic(-1); return err },
		func() error { _, err := NewDeterministic(math.Inf(1)); return err },
		func() error { _, err := NewGamma(0, 1); return err },
		func() error { _, err := NewGamma(1, 0); return err },
		func() error { _, err := NewPareto(0, 1); return err },
		func() error { _, err := NewPareto(1, 0); return err },
		func() error { _, err := NewEmpirical(nil); return err },
		func() error { _, err := NewEmpirical([]float64{1, -2}); return err },
		func() error { _, err := NewMixture(nil); return err },
		func() error { _, err := NewMixture([]Component{{Weight: 0, Dist: Must(ExpMean(1))}}); return err },
		func() error { _, err := NewMixture([]Component{{Weight: 1, Dist: nil}}); return err },
	}
	for i, f := range bad {
		if f() == nil {
			t.Errorf("invalid construction %d accepted", i)
		}
	}
}

func TestMustPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Must did not panic on constructor error")
		}
	}()
	Must(NewWeibull(-1, 1))
}

func TestDeterministicIsExact(t *testing.T) {
	d := Must(NewDeterministic(12))
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if d.Sample(r) != 12 {
			t.Fatal("deterministic draw differs from value")
		}
	}
	if d.CDF(11.999) != 0 || d.CDF(12) != 1 {
		t.Error("deterministic CDF is not a step at the value")
	}
}

func TestEmpiricalReplaysOnlyObservedValues(t *testing.T) {
	e := mustEmp(t)
	observed := map[float64]bool{1: true, 2: true, 3: true, 5: true, 8: true, 13: true}
	r := rng.New(3)
	for i := 0; i < 10_000; i++ {
		if v := e.Sample(r); !observed[v] {
			t.Fatalf("empirical produced unobserved value %v", v)
		}
	}
	if e.N() != 7 {
		t.Errorf("N = %d, want 7", e.N())
	}
}

func TestMixtureWeightsNormalized(t *testing.T) {
	m, err := NewMixture([]Component{
		{Weight: 3, Dist: Must(NewDeterministic(1))},
		{Weight: 1, Dist: Must(NewDeterministic(5))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mean()-2) > 1e-12 {
		t.Errorf("mixture mean = %v, want 2", m.Mean())
	}
	// 3:1 mixture of point masses: variance = E[X^2]-4 = (0.75+0.25*25)-4 = 3.
	if math.Abs(m.Variance()-3) > 1e-12 {
		t.Errorf("mixture variance = %v, want 3", m.Variance())
	}
	r := rng.New(9)
	count1 := 0
	const draws = 100_000
	for i := 0; i < draws; i++ {
		if m.Sample(r) == 1 {
			count1++
		}
	}
	if frac := float64(count1) / draws; math.Abs(frac-0.75) > 0.01 {
		t.Errorf("component 1 drawn %.3f of the time, want ~0.75", frac)
	}
}

func TestNormQuantileAgainstErf(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1 - 1e-4} {
		x := normQuantile(p)
		back := 0.5 * math.Erfc(-x/math.Sqrt2)
		if math.Abs(back-p) > 1e-12*math.Max(1, 1/p) {
			t.Errorf("normQuantile(%v) = %v, CDF back = %v", p, x, back)
		}
	}
}

func TestRegIncGammaP(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 1, 3, 10} {
		want := -math.Expm1(-x)
		if got := regIncGammaP(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1, %v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := regIncGammaP(0.5, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("P(0.5, %v) = %v, want %v", x, got, want)
		}
	}
}

func TestEmpiricalQuantileBoundary(t *testing.T) {
	// Quantile must return inf{x : CDF(x) >= p}: at p = k/n the k-th
	// order statistic already reaches p.
	e := Must(NewEmpirical([]float64{10, 20}))
	if got := e.Quantile(0.5); got != 10 {
		t.Errorf("Quantile(0.5) = %v, want 10 (CDF(10) = 0.5)", got)
	}
	if got := e.Quantile(0.51); got != 20 {
		t.Errorf("Quantile(0.51) = %v, want 20", got)
	}
	if got := e.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v, want 10", got)
	}
}

func TestMixtureVarianceWithHeavyTail(t *testing.T) {
	m, err := NewMixture([]Component{
		{Weight: 0.5, Dist: Must(NewPareto(1, 1))}, // infinite mean
		{Weight: 0.5, Dist: Must(NewDeterministic(1))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Variance(); !math.IsInf(v, 1) {
		t.Errorf("heavy-tail mixture variance = %v, want +Inf", v)
	}
	if mu := m.Mean(); !math.IsInf(mu, 1) {
		t.Errorf("heavy-tail mixture mean = %v, want +Inf", mu)
	}
	// Infinite variance but finite mean (alpha in (1, 2]).
	m2, err := NewMixture([]Component{
		{Weight: 0.5, Dist: Must(NewPareto(1, 1.5))},
		{Weight: 0.5, Dist: Must(NewDeterministic(1))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m2.Variance(); !math.IsInf(v, 1) {
		t.Errorf("infinite-variance mixture variance = %v, want +Inf", v)
	}
}
