package dist

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

func draw(t *testing.T, d Dist, n int, seed uint64) []float64 {
	t.Helper()
	r := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	return xs
}

// TestFitBestRecoversWeibull: synthetic Weibull samples must rank the
// weibull family first and recover shape/scale within a few percent —
// the internal/trace calibration contract.
func TestFitBestRecoversWeibull(t *testing.T) {
	truth := Must(NewWeibull(0.7, 1500))
	fits := FitBest(draw(t, truth, 5000, 42))
	if len(fits) < 4 {
		t.Fatalf("only %d families fitted", len(fits))
	}
	if fits[0].Name != "weibull" {
		t.Fatalf("best fit = %s (KS %.4f), want weibull; table:\n%s",
			fits[0].Name, fits[0].KS, FitSummary(fits))
	}
	w, ok := fits[0].Dist.(Weibull)
	if !ok {
		t.Fatalf("fitted dist is %T, want Weibull value", fits[0].Dist)
	}
	if relErr(w.Shape, 0.7) > 0.05 {
		t.Errorf("recovered shape %v, want ~0.7", w.Shape)
	}
	if relErr(w.Scale, 1500) > 0.08 {
		t.Errorf("recovered scale %v, want ~1500", w.Scale)
	}
}

// TestFitBestRecoversLogNormal mirrors the Weibull round-trip for
// LogNormal repair durations.
func TestFitBestRecoversLogNormal(t *testing.T) {
	truth := Must(NewLogNormal(2.0, 0.8))
	fits := FitBest(draw(t, truth, 5000, 43))
	if fits[0].Name != "lognormal" {
		t.Fatalf("best fit = %s, want lognormal; table:\n%s", fits[0].Name, FitSummary(fits))
	}
	l, ok := fits[0].Dist.(LogNormal)
	if !ok {
		t.Fatalf("fitted dist is %T, want LogNormal value", fits[0].Dist)
	}
	if math.Abs(l.Mu-2.0) > 0.05 || math.Abs(l.Sigma-0.8) > 0.05 {
		t.Errorf("recovered (%v, %v), want (2.0, 0.8)", l.Mu, l.Sigma)
	}
}

func TestFitBestRecoversExponential(t *testing.T) {
	truth := Must(ExpMean(500))
	fits := FitBest(draw(t, truth, 5000, 44))
	// Weibull and gamma nest the exponential, so any of the three is a
	// legitimate winner — but the fitted mean must match and the
	// exponential must be statistically acceptable.
	var expFit *FitResult
	for i := range fits {
		if fits[i].Name == "exponential" {
			expFit = &fits[i]
		}
	}
	if expFit == nil {
		t.Fatal("exponential family missing from fits")
	}
	if relErr(expFit.Dist.Mean(), 500) > 0.05 {
		t.Errorf("fitted mean = %v, want ~500", expFit.Dist.Mean())
	}
	if expFit.PValue < 0.01 {
		t.Errorf("exponential rejected on its own data: p = %v", expFit.PValue)
	}
}

func TestFitBestRecoversGamma(t *testing.T) {
	truth := Must(NewGamma(3, 7))
	fits := FitBest(draw(t, truth, 5000, 45))
	var g *FitResult
	for i := range fits {
		if fits[i].Name == "gamma" {
			g = &fits[i]
		}
	}
	if g == nil {
		t.Fatal("gamma family missing from fits")
	}
	gd := g.Dist.(Gamma)
	if relErr(gd.Shape, 3) > 0.1 || relErr(gd.Scale, 7) > 0.1 {
		t.Errorf("recovered gamma(%v, %v), want (3, 7)", gd.Shape, gd.Scale)
	}
	if fits[0].Name != "gamma" && fits[0].Name != "weibull" {
		t.Errorf("best fit = %s, want gamma (or its close cousin weibull); table:\n%s",
			fits[0].Name, FitSummary(fits))
	}
}

func TestFitBestRecoversPareto(t *testing.T) {
	truth := Must(NewPareto(2, 2.5))
	fits := FitBest(draw(t, truth, 5000, 46))
	if fits[0].Name != "pareto" {
		t.Fatalf("best fit = %s, want pareto; table:\n%s", fits[0].Name, FitSummary(fits))
	}
	p := fits[0].Dist.(Pareto)
	if relErr(p.Alpha, 2.5) > 0.1 || relErr(p.Xm, 2) > 0.02 {
		t.Errorf("recovered pareto(xm=%v, alpha=%v), want (2, 2.5)", p.Xm, p.Alpha)
	}
}

func TestFitBestRankingIsByKS(t *testing.T) {
	fits := FitBest(draw(t, Must(NewWeibull(0.7, 100)), 2000, 47))
	for i := 1; i < len(fits); i++ {
		if fits[i].KS < fits[i-1].KS {
			t.Fatalf("fits not sorted by KS: %v after %v", fits[i].KS, fits[i-1].KS)
		}
	}
	for _, f := range fits {
		if f.PValue < 0 || f.PValue > 1 {
			t.Errorf("%s: p-value %v out of range", f.Name, f.PValue)
		}
		if math.IsNaN(f.LogLik) || math.IsNaN(f.AIC) {
			t.Errorf("%s: NaN scores", f.Name)
		}
	}
}

func TestFitBestDegenerateAndHostileInput(t *testing.T) {
	if fits := FitBest(nil); fits != nil {
		t.Errorf("empty input produced fits: %v", fits)
	}
	if fits := FitBest([]float64{-1, 0, math.NaN()}); fits != nil {
		t.Errorf("all-invalid input produced fits: %v", fits)
	}
	// Constant sample: deterministic only.
	fits := FitBest([]float64{5, 5, 5, 5, 5})
	if len(fits) != 1 || fits[0].Name != "deterministic" {
		t.Fatalf("constant sample fits = %v", fits)
	}
	if d := fits[0].Dist.(Deterministic); d.Value != 5 {
		t.Errorf("deterministic value = %v, want 5", d.Value)
	}
	// Negative values are dropped, positives still fitted.
	mixed := append([]float64{-3, 0}, draw(t, Must(ExpMean(10)), 100, 48)...)
	if fits := FitBest(mixed); len(fits) == 0 {
		t.Error("positive subsample produced no fits")
	}
}

// TestFitLogLikConsistency: on its own data the true family's
// log-likelihood must not be beaten by more than sampling noise allows.
func TestFitLogLikConsistency(t *testing.T) {
	fits := FitBest(draw(t, Must(NewLogNormal(1.5, 0.6)), 5000, 49))
	var ln, exp FitResult
	for _, f := range fits {
		switch f.Name {
		case "lognormal":
			ln = f
		case "exponential":
			exp = f
		}
	}
	if ln.LogLik <= exp.LogLik {
		t.Errorf("lognormal loglik %v not above exponential %v on lognormal data",
			ln.LogLik, exp.LogLik)
	}
	if ln.AIC >= exp.AIC {
		t.Errorf("lognormal AIC %v not below exponential %v", ln.AIC, exp.AIC)
	}
}

func TestKSPValueCalibration(t *testing.T) {
	// On-true-model KS distances should be small and non-rejecting.
	truth := Must(NewWeibull(0.9, 50))
	fits := FitBest(draw(t, truth, 3000, 50))
	if fits[0].KS > 0.05 {
		t.Errorf("best KS = %v, implausibly large for n=3000", fits[0].KS)
	}
	if fits[0].PValue < 0.001 {
		t.Errorf("true family rejected: p = %v", fits[0].PValue)
	}
	// A grossly wrong CDF must be rejected.
	xs := draw(t, Must(ExpMean(1)), 3000, 51)
	bad := Must(NewDeterministic(1000))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	d := ksStatistic(bad, sorted)
	if p := ksPValue(d, len(xs)); p > 1e-6 {
		t.Errorf("gross misfit got p = %v", p)
	}
}

func TestDigamma(t *testing.T) {
	// digamma(1) = -gamma (Euler-Mascheroni).
	const euler = 0.5772156649015329
	if got := digamma(1); math.Abs(got+euler) > 1e-12 {
		t.Errorf("digamma(1) = %v, want %v", got, -euler)
	}
	// Recurrence digamma(x+1) = digamma(x) + 1/x.
	for _, x := range []float64{0.3, 1.7, 4.2, 9.9} {
		if diff := digamma(x+1) - digamma(x) - 1/x; math.Abs(diff) > 1e-12 {
			t.Errorf("digamma recurrence violated at %v by %v", x, diff)
		}
	}
}
