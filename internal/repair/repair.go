// Package repair implements the re-replication subsystem: detecting
// failed nodes, copying surviving replicas/shards to fresh nodes over the
// simulated network, and accounting for the windows of vulnerability in
// between.
//
// This is the software knob at the center of the paper's §1 argument:
// "the latency of the repair process can be reduced by using a faster
// network (hardware), or by optimizing the repair algorithm (software),
// or both. For example, by instantiating parallel repairs on different
// machines, one can decrease the probability that the data will become
// unavailable." Mode and MaxConcurrent encode exactly that choice, and
// the network model (internal/netsim) makes the faster-network comparison
// meaningful.
package repair

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Mode selects the repair scheduling discipline.
type Mode int

const (
	// Serial runs one re-replication transfer at a time.
	Serial Mode = iota
	// Parallel runs up to MaxConcurrent transfers, sourced from the
	// surviving replicas spread over different machines.
	Parallel
)

func (m Mode) String() string {
	if m == Serial {
		return "serial"
	}
	return "parallel"
}

// Config tunes the repair subsystem.
type Config struct {
	Mode          Mode
	MaxConcurrent int       // transfer slots in Parallel mode (>= 1)
	Detection     dist.Dist // failure-detection delay (hours); nil = instant
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Mode == Parallel && c.MaxConcurrent < 1 {
		return fmt.Errorf("repair: parallel mode needs MaxConcurrent >= 1, got %d", c.MaxConcurrent)
	}
	return nil
}

func (c Config) slots() int {
	if c.Mode == Serial {
		return 1
	}
	return c.MaxConcurrent
}

// task is one pending shard re-replication.
type task struct {
	obj     *storage.Object
	from    int // failed node holding the lost shard
	created sim.Time
}

// Manager watches the cluster and repairs lost redundancy.
type Manager struct {
	cfg   Config
	sim   *sim.Simulator
	clst  *cluster.Cluster
	store *storage.Store

	queue  []task
	active int
	lost   map[int]bool // object id -> permanently lost

	// Metrics.
	completed    int64
	bytesMoved   float64
	repairTimes  stats.Sample
	lastRepairAt sim.Time
	lostCount    int64
	unavailTW    stats.TimeWeighted // unavailable-object count over time
	anyTW        stats.TimeWeighted // any-unavailable indicator over time
	zeroTW       stats.TimeWeighted // any-object-at-zero-copies indicator (§1)

	// Per-tenant accounting for SLA-as-distribution queries (§4.1):
	// prevDown[i] tracks whether object i was unavailable at lastScan,
	// downTime[i] accumulates its unavailable time.
	prevDown []bool
	downTime []float64
	lastScan sim.Time
}

// NewManager wires a repair manager to a cluster and store. Call Start to
// register the failure hooks.
func NewManager(s *sim.Simulator, cl *cluster.Cluster, st *storage.Store, cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cl.Size() != st.View().Nodes {
		return nil, fmt.Errorf("repair: cluster has %d nodes but store view has %d", cl.Size(), st.View().Nodes)
	}
	m := &Manager{cfg: cfg, sim: s, clst: cl, store: st, lost: make(map[int]bool)}
	m.unavailTW.Set(s.Now(), 0)
	m.anyTW.Set(s.Now(), 0)
	m.zeroTW.Set(s.Now(), 0)
	m.prevDown = make([]bool, st.Len())
	m.downTime = make([]float64, st.Len())
	m.lastScan = s.Now()
	return m, nil
}

// Start registers the manager on cluster failure events.
func (m *Manager) Start() {
	m.clst.OnNodeDown(func(n *cluster.Node) {
		m.onNodeDown(n.ID)
	})
	m.clst.OnNodeUp(func(*cluster.Node) {
		m.updateUnavailability()
		// A recovered node may unblock tasks that had no eligible
		// repair target (wide schemes on small clusters).
		m.pump()
	})
}

// destroyed reports whether node id's data is gone: the node itself is
// down. A node that is merely unreachable — its ToR, PDU or the whole
// facility's power failed — still holds its shards and serves them
// again on restore, so loss decisions must never use reachability
// (otherwise one facility blackout would "lose" every object).
func (m *Manager) destroyed(id int) bool { return !m.clst.Nodes()[id].Up() }

// onNodeDown schedules repairs for every shard on the dead node.
func (m *Manager) onNodeDown(nodeID int) {
	m.updateUnavailability()
	if !m.destroyed(nodeID) {
		// Reachability-only transition (ToR/PDU/utility domain outage):
		// the node's data is intact and serves again on restore, so
		// there is nothing to detect or re-replicate. Skipping here
		// keeps a facility blackout from queueing (and then dropping)
		// one task per shard in the whole data center.
		return
	}
	objs := m.store.ObjectsOn(nodeID)
	delay := 0.0
	if m.cfg.Detection != nil {
		delay = m.cfg.Detection.Sample(m.sim.Stream("repair-detect"))
	}
	for _, obj := range objs {
		obj := obj
		if m.lost[obj.ID] {
			continue
		}
		if m.store.Lost(obj, m.destroyed) {
			m.lost[obj.ID] = true
			m.lostCount++
			continue
		}
		m.sim.Schedule(delay, "repair/detect", func() {
			m.queue = append(m.queue, task{obj: obj, from: nodeID, created: m.sim.Now()})
			m.pump()
		})
	}
}

// pump starts transfers while slots are free. Each task currently queued
// is attempted at most once per invocation: startRepair re-appends tasks
// that have no eligible target right now, and retrying them within the
// same pump would spin forever — they wait for the next cluster event
// (node up/down, transfer completion) instead.
func (m *Manager) pump() {
	attempts := len(m.queue)
	for m.active < m.cfg.slots() && attempts > 0 && len(m.queue) > 0 {
		attempts--
		t := m.queue[0]
		m.queue = m.queue[1:]
		m.startRepair(t)
	}
}

// startRepair begins one transfer; returns false if the task was dropped
// (already healthy, lost, or no valid source/target).
func (m *Manager) startRepair(t task) bool {
	down := func(id int) bool { return !m.clst.Available(id) }
	// Skip if the shard's node recovered or the object is gone. The
	// "still missing" test is about data (node-local state): a shard on
	// a merely-unreachable node needs no re-replication.
	if m.lost[t.obj.ID] {
		return false
	}
	stillMissing := false
	for _, loc := range t.obj.Locations {
		if loc == t.from {
			stillMissing = m.destroyed(t.from)
		}
	}
	if !stillMissing {
		return false
	}
	if m.store.Lost(t.obj, m.destroyed) {
		m.lost[t.obj.ID] = true
		m.lostCount++
		return false
	}
	src := m.pickSource(t.obj, down)
	if src < 0 {
		// Survivors exist but none is reachable right now (a correlated
		// domain outage): requeue for the next cluster event.
		m.queue = append(m.queue, t)
		return false
	}
	dst := m.pickTarget(t.obj, down)
	if dst < 0 {
		// No eligible target now; requeue for the next pump.
		m.queue = append(m.queue, t)
		return false
	}
	srcHost := m.clst.Nodes()[src].Host
	dstHost := m.clst.Nodes()[dst].Host
	// Replication repair copies one full replica (SizeMB). RS repair
	// reconstructs one shard of SizeMB/K by reading K surviving shards —
	// K * (SizeMB/K) = SizeMB of traffic again, but charged as a single
	// decode-at-target flow: the K-fold read amplification relative to
	// the shard size is preserved in bytes moved while keeping the flow
	// graph simple.
	size := t.obj.SizeMB
	m.active++
	_, err := m.clst.Flow.Start(srcHost, dstHost, size,
		func(*netsim.Flow) {
			m.active--
			m.finishRepair(t, dst, size)
			m.pump()
		},
		func(_ *netsim.Flow, _ error) {
			// Transfer killed by another failure: retry from scratch.
			m.active--
			m.queue = append(m.queue, t)
			m.pump()
		})
	if err != nil {
		m.active--
		// Network partition: requeue and hope for topology recovery.
		m.queue = append(m.queue, t)
		return false
	}
	return true
}

// finishRepair commits a completed transfer.
func (m *Manager) finishRepair(t task, dst int, size float64) {
	if m.lost[t.obj.ID] {
		return
	}
	// The source data survived the transfer window?
	if m.store.Lost(t.obj, m.destroyed) {
		m.lost[t.obj.ID] = true
		m.lostCount++
		return
	}
	if err := m.store.Relocate(t.obj, t.from, dst); err != nil {
		// Placement raced with recovery; treat as no-op repair.
		return
	}
	m.completed++
	m.bytesMoved += size
	// Repair time spans from detection to committed relocation, including
	// any wait for a transfer slot — the "time to re-protect" that serial
	// vs. parallel repair trades off (§1).
	m.repairTimes.Add(m.sim.Now() - t.created)
	m.lastRepairAt = m.sim.Now()
	m.updateUnavailability()
}

// pickSource returns an available node holding a live shard, or -1.
func (m *Manager) pickSource(obj *storage.Object, down func(int) bool) int {
	for _, loc := range obj.Locations {
		if !down(loc) {
			return loc
		}
	}
	return -1
}

// pickTarget returns an available node not holding a shard, chosen via
// the repair stream, or -1.
func (m *Manager) pickTarget(obj *storage.Object, down func(int) bool) int {
	holds := make(map[int]bool, len(obj.Locations))
	for _, loc := range obj.Locations {
		holds[loc] = true
	}
	var candidates []int
	for id := 0; id < m.clst.Size(); id++ {
		if !down(id) && !holds[id] {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	r := m.sim.Stream("repair-target")
	return candidates[r.Intn(len(candidates))]
}

// updateUnavailability re-evaluates the unavailable-object count signal
// and banks per-tenant unavailable time since the previous scan.
func (m *Manager) updateUnavailability() {
	down := func(id int) bool { return !m.clst.Available(id) }
	now := m.sim.Now()
	dt := now - m.lastScan
	count := 0
	for i, obj := range m.store.Objects() {
		if i >= len(m.prevDown) {
			// Objects added after manager construction: extend tracking.
			m.prevDown = append(m.prevDown, false)
			m.downTime = append(m.downTime, 0)
		}
		if m.prevDown[i] && dt > 0 {
			m.downTime[i] += dt
		}
		unavail := !m.store.Available(obj, down)
		m.prevDown[i] = unavail
		if unavail {
			count++
		}
	}
	m.lastScan = now
	m.unavailTW.Set(now, float64(count))
	ind := 0.0
	if count > 0 {
		ind = 1
	}
	m.anyTW.Set(now, ind)
	zero := 0.0
	if m.store.LostCount(down) > 0 {
		zero = 1
	}
	m.zeroTW.Set(now, zero)
}

// Completed returns the number of finished repairs.
func (m *Manager) Completed() int64 { return m.completed }

// BytesMovedMB returns total repair traffic.
func (m *Manager) BytesMovedMB() float64 { return m.bytesMoved }

// LostObjects returns the number of permanently lost objects.
func (m *Manager) LostObjects() int64 { return m.lostCount }

// RepairTimes returns the distribution of completed repair durations.
func (m *Manager) RepairTimes() *stats.Sample { return &m.repairTimes }

// LastRepairAt returns the simulation time of the most recent completed
// repair; together with the failure time it gives the redundancy-
// restoration makespan (the quantity parallel repair shrinks, §1).
func (m *Manager) LastRepairAt() sim.Time { return m.lastRepairAt }

// MeanUnavailableObjects returns the time-averaged number of unavailable
// objects over [0, now].
func (m *Manager) MeanUnavailableObjects() float64 {
	m.updateUnavailability()
	return m.unavailTW.Average()
}

// AnyUnavailableFraction returns the fraction of time at least one object
// was unavailable over [0, now] — the availability-SLA metric of §3.
func (m *Manager) AnyUnavailableFraction() float64 {
	m.updateUnavailability()
	return m.anyTW.Average()
}

// ZeroCopyFraction returns the fraction of time at least one object had
// zero live copies — §1's stricter unavailability notion, the quantity
// parallel repair and faster networks shrink.
func (m *Manager) ZeroCopyFraction() float64 {
	m.updateUnavailability()
	return m.zeroTW.Average()
}

// TenantAvailabilities returns each tenant's availability (1 - fraction
// of [0, now] its object was unavailable), enabling §4.1 SLAs expressed
// as distributions over tenants ("95% of customers at three nines").
func (m *Manager) TenantAvailabilities() []float64 {
	m.updateUnavailability()
	horizon := m.sim.Now()
	out := make([]float64, len(m.downTime))
	for i, dt := range m.downTime {
		if horizon <= 0 {
			out[i] = 1
			continue
		}
		out[i] = 1 - dt/horizon
	}
	return out
}

// QueueLength returns the number of repairs waiting for a slot.
func (m *Manager) QueueLength() int { return len(m.queue) }

// ActiveRepairs returns the number of in-flight transfers.
func (m *Manager) ActiveRepairs() int { return m.active }
