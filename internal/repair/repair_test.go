package repair

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/hardware"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
)

// env builds a small cluster + store + repair manager for tests.
func env(t *testing.T, cfg Config, nodeTTF, nodeRepair dist.Dist) (*sim.Simulator, *cluster.Cluster, *storage.Store, *Manager) {
	t.Helper()
	s := sim.New(42)
	ccfg := cluster.Config{
		Racks: 2, NodesPerRack: 5,
		DiskSpec: "hdd-7200", DisksPerNode: 1,
		NICSpec: "nic-10g", CPUSpec: "cpu-8c", MemSpec: "mem-16g",
		SwitchSpec: "switch-48p-10g",
		NodeTTF:    nodeTTF, NodeRepair: nodeRepair,
	}
	cl, err := cluster.Build(s, hardware.DefaultCatalog(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	view := storage.View{Nodes: cl.Size()}
	st, err := storage.NewStore(view, storage.Random{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddObjects(50, 100, storage.ReplicationScheme(3), rng.New(7)); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(s, cl, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	return s, cl, st, m
}

func TestRepairRestoresRedundancy(t *testing.T) {
	s, cl, st, m := env(t, Config{Mode: Parallel, MaxConcurrent: 8}, nil, nil)
	// Kill node 0 permanently at t=1.
	s.Schedule(1, "kill", func() { cl.FailNode(0) })
	onNode0 := len(st.ObjectsOn(0))
	if onNode0 == 0 {
		t.Fatal("test setup: no objects on node 0")
	}
	s.RunUntil(10000)
	if m.Completed() != int64(onNode0) {
		t.Fatalf("completed %d repairs, want %d", m.Completed(), onNode0)
	}
	// All shards moved off node 0.
	if got := len(st.ObjectsOn(0)); got != 0 {
		t.Fatalf("%d objects still on dead node", got)
	}
	if m.LostObjects() != 0 {
		t.Fatalf("lost %d objects", m.LostObjects())
	}
	if m.BytesMovedMB() != float64(onNode0)*100 {
		t.Fatalf("bytes moved %v, want %v", m.BytesMovedMB(), float64(onNode0)*100)
	}
}

func TestSerialSlowerThanParallel(t *testing.T) {
	// §1: parallel repairs shrink the time to restore full redundancy
	// (makespan), not the per-transfer time.
	run := func(cfg Config) float64 {
		s, cl, _, m := env(t, cfg, nil, nil)
		s.Schedule(1, "kill", func() { cl.FailNode(0) })
		s.RunUntil(100000)
		if m.Completed() == 0 {
			t.Fatal("no repairs completed")
		}
		return m.LastRepairAt() - 1 // failure injected at t=1
	}
	serialMakespan := run(Config{Mode: Serial})
	parallelMakespan := run(Config{Mode: Parallel, MaxConcurrent: 16})
	if parallelMakespan >= serialMakespan {
		t.Fatalf("parallel makespan %v should beat serial %v", parallelMakespan, serialMakespan)
	}
}

func TestLostObjectCounted(t *testing.T) {
	s, cl, st, m := env(t, Config{Mode: Serial, Detection: dist.Must(dist.NewDeterministic(1000))}, nil, nil)
	// Find one object and kill all its replicas before detection fires.
	obj := st.Objects()[0]
	s.Schedule(1, "kill-all", func() {
		for _, loc := range obj.Locations {
			cl.FailNode(loc)
		}
	})
	s.RunUntil(5000)
	if m.LostObjects() == 0 {
		t.Fatal("object with all replicas dead not counted as lost")
	}
}

func TestUnavailabilityWindowMeasured(t *testing.T) {
	s, cl, st, m := env(t, Config{Mode: Parallel, MaxConcurrent: 8}, nil, nil)
	obj := st.Objects()[0]
	// Take down a majority of one object's replicas for a while, then
	// restore; the any-unavailable fraction must be positive but < 1.
	s.Schedule(10, "kill", func() {
		cl.FailNode(obj.Locations[0])
		cl.FailNode(obj.Locations[1])
	})
	s.Schedule(20, "restore", func() {
		cl.RestoreNode(obj.Locations[0])
		cl.RestoreNode(obj.Locations[1])
	})
	s.Schedule(100, "horizon", func() {})
	s.RunUntil(100)
	frac := m.AnyUnavailableFraction()
	if frac <= 0 || frac >= 0.5 {
		t.Fatalf("any-unavailable fraction = %v, want in (0, 0.5)", frac)
	}
	if m.MeanUnavailableObjects() <= 0 {
		t.Fatal("mean unavailable objects should be positive")
	}
}

func TestChurnWithLifecycleFailures(t *testing.T) {
	// Continuous failures + repairs: the system must keep redundancy and
	// not deadlock. Node MTTF 2000h, repair 24h.
	cfg := Config{Mode: Parallel, MaxConcurrent: 4}
	s, _, _, m := env(t, cfg,
		dist.Must(dist.ExpMean(2000)),
		dist.Must(dist.NewDeterministic(24)))
	// env wires lifecycle only when StartFailures is called.
	// Do it here: cluster is second return.
	_ = m
	s2, cl2, _, m2 := env(t, cfg,
		dist.Must(dist.ExpMean(2000)),
		dist.Must(dist.NewDeterministic(24)))
	cl2.StartFailures()
	s2.RunUntil(20000)
	if cl2.NodeFailures() == 0 {
		t.Fatal("no node failures in churn test")
	}
	if m2.Completed() == 0 {
		t.Fatal("no repairs completed under churn")
	}
	_ = s
}

func TestWideSchemeNoTargetDoesNotSpin(t *testing.T) {
	// Regression: RS(6,3) spans 9 of 10 nodes. With one node down and a
	// second failing, some repairs have zero eligible targets; the pump
	// must defer them (not spin) and finish them once a node returns.
	s := sim.New(42)
	ccfg := cluster.Config{
		Racks: 2, NodesPerRack: 5,
		DiskSpec: "hdd-7200", DisksPerNode: 1,
		NICSpec: "nic-10g", CPUSpec: "cpu-8c", MemSpec: "mem-16g",
		SwitchSpec: "switch-48p-10g",
	}
	cl, err := cluster.Build(s, hardware.DefaultCatalog(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.NewStore(storage.View{Nodes: cl.Size()}, storage.Random{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddObjects(20, 50, storage.RSScheme(6, 3), rng.New(7)); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(s, cl, st, Config{Mode: Parallel, MaxConcurrent: 8})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	// Two failures leave 8 available nodes: every object (width 9) has at
	// least one shard on a down node and at most zero spare targets.
	s.Schedule(1, "kill-0", func() { cl.FailNode(0) })
	s.Schedule(1.5, "kill-1", func() { cl.FailNode(1) })
	// Node 1 recovers later, unblocking deferred repairs of node 0's
	// shards.
	s.Schedule(50, "restore-1", func() { cl.RestoreNode(1) })
	s.RunUntil(10000) // would time out (never return) with a spinning pump
	if len(st.ObjectsOn(0)) != 0 {
		t.Fatalf("%d objects still on permanently dead node 0", len(st.ObjectsOn(0)))
	}
	if m.Completed() == 0 {
		t.Fatal("no repairs completed after recovery")
	}
	if m.QueueLength() != 0 {
		t.Fatalf("%d tasks still queued at drain", m.QueueLength())
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{Mode: Parallel, MaxConcurrent: 0}).Validate(); err == nil {
		t.Error("parallel with 0 slots accepted")
	}
	if err := (Config{Mode: Serial}).Validate(); err != nil {
		t.Errorf("serial config rejected: %v", err)
	}
	if Serial.String() != "serial" || Parallel.String() != "parallel" {
		t.Error("mode names wrong")
	}
}

func TestMismatchedViewRejected(t *testing.T) {
	s := sim.New(1)
	cl, err := cluster.Build(s, hardware.DefaultCatalog(), cluster.Config{
		Racks: 1, NodesPerRack: 3,
		DiskSpec: "hdd-7200", DisksPerNode: 1,
		NICSpec: "nic-10g", CPUSpec: "cpu-8c", MemSpec: "mem-16g",
		SwitchSpec: "switch-48p-10g",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.NewStore(storage.View{Nodes: 99}, storage.Random{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(s, cl, st, Config{Mode: Serial}); err == nil {
		t.Error("mismatched store view accepted")
	}
}
