// Package cost prices data center configurations: capital expenditure
// from the hardware catalog, energy, and expected replacement spend over
// an operating horizon. It answers the economic half of the paper's
// provisioning question (§3: "...and minimize the total operating cost").
package cost

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hardware"
)

// PriceBook holds the economic constants.
type PriceBook struct {
	// USDPerKWh is the electricity price.
	USDPerKWh float64
	// PUE is the power usage effectiveness multiplier (total facility
	// power / IT power), typically 1.1-2.0.
	PUE float64
	// ReplacementLaborUSD is the flat labor cost per component swap.
	ReplacementLaborUSD float64
}

// DefaultPriceBook returns 2014-era defaults.
func DefaultPriceBook() PriceBook {
	return PriceBook{USDPerKWh: 0.10, PUE: 1.5, ReplacementLaborUSD: 50}
}

// Validate checks the price book.
func (p PriceBook) Validate() error {
	if p.USDPerKWh < 0 || p.PUE < 1 || p.ReplacementLaborUSD < 0 {
		return fmt.Errorf("cost: invalid price book %+v", p)
	}
	return nil
}

// Breakdown itemizes a configuration's cost over a horizon.
type Breakdown struct {
	CapexUSD       float64 // purchase price of all components
	EnergyUSD      float64 // power over the horizon
	ReplacementUSD float64 // expected component replacements
	HorizonHours   float64
}

// TotalUSD returns the sum of all items.
func (b Breakdown) TotalUSD() float64 {
	return b.CapexUSD + b.EnergyUSD + b.ReplacementUSD
}

func (b Breakdown) String() string {
	return fmt.Sprintf("total $%.0f (capex $%.0f, energy $%.0f, replacement $%.0f over %.0fh)",
		b.TotalUSD(), b.CapexUSD, b.EnergyUSD, b.ReplacementUSD, b.HorizonHours)
}

// nodeSpecs lists the per-node component specs of a cluster config.
func nodeSpecs(cat *hardware.Catalog, cfg cluster.Config) ([]hardware.Spec, error) {
	var specs []hardware.Spec
	disk, err := cat.Get(cfg.DiskSpec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.DisksPerNode; i++ {
		specs = append(specs, disk)
	}
	for _, name := range []string{cfg.NICSpec, cfg.CPUSpec, cfg.MemSpec} {
		sp, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// Estimate prices a cluster configuration over horizonHours. Expected
// replacements use each component's mean time to failure: horizon/MTTF
// failures per component in steady state (each swap costs labor plus the
// component price).
func Estimate(cat *hardware.Catalog, cfg cluster.Config, book PriceBook, horizonHours float64) (Breakdown, error) {
	if err := book.Validate(); err != nil {
		return Breakdown{}, err
	}
	if horizonHours <= 0 {
		return Breakdown{}, fmt.Errorf("cost: horizon must be positive, got %v", horizonHours)
	}
	if err := cfg.Validate(); err != nil {
		return Breakdown{}, err
	}
	perNode, err := nodeSpecs(cat, cfg)
	if err != nil {
		return Breakdown{}, err
	}
	swSpec, err := cat.Get(cfg.SwitchSpec)
	if err != nil {
		return Breakdown{}, err
	}

	nodes := float64(cfg.Racks * cfg.NodesPerRack)
	var b Breakdown
	b.HorizonHours = horizonHours
	addSpec := func(sp hardware.Spec, count float64) {
		b.CapexUSD += sp.CostUSD * count
		kwh := sp.PowerWatts / 1000 * horizonHours * book.PUE
		b.EnergyUSD += kwh * book.USDPerKWh * count
		mttf := sp.TTF.Mean()
		if mttf > 0 {
			expectedFailures := horizonHours / mttf * count
			b.ReplacementUSD += expectedFailures * (sp.CostUSD + book.ReplacementLaborUSD)
		}
	}
	for _, sp := range perNode {
		addSpec(sp, nodes)
	}
	// One ToR switch per rack plus one core switch.
	addSpec(swSpec, float64(cfg.Racks)+1)
	return b, nil
}

// PerUserMonthlyUSD converts a breakdown into a per-user monthly price
// given the user population, amortizing capex over the horizon.
func PerUserMonthlyUSD(b Breakdown, users int) (float64, error) {
	if users < 1 {
		return 0, fmt.Errorf("cost: need >= 1 user, got %d", users)
	}
	months := b.HorizonHours / (hardware.HoursPerYear / 12)
	if months <= 0 {
		return 0, fmt.Errorf("cost: non-positive horizon")
	}
	return b.TotalUSD() / months / float64(users), nil
}
