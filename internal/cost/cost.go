// Package cost prices data center configurations: capital expenditure
// from the hardware catalog, energy, and expected replacement spend over
// an operating horizon. It answers the economic half of the paper's
// provisioning question (§3: "...and minimize the total operating cost").
package cost

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/power"
)

// PriceBook holds the economic constants.
type PriceBook struct {
	// USDPerKWh is the electricity price.
	USDPerKWh float64
	// PUE is the power usage effectiveness multiplier (total facility
	// power / IT power), typically 1.1-2.0.
	PUE float64
	// ReplacementLaborUSD is the flat labor cost per component swap.
	ReplacementLaborUSD float64
}

// DefaultPriceBook returns 2014-era defaults.
func DefaultPriceBook() PriceBook {
	return PriceBook{USDPerKWh: 0.10, PUE: 1.5, ReplacementLaborUSD: 50}
}

// Validate checks the price book.
func (p PriceBook) Validate() error {
	if p.USDPerKWh < 0 || p.PUE < 1 || p.ReplacementLaborUSD < 0 {
		return fmt.Errorf("cost: invalid price book %+v", p)
	}
	return nil
}

// Breakdown itemizes a configuration's cost over a horizon.
type Breakdown struct {
	CapexUSD       float64 // purchase price of all components
	EnergyUSD      float64 // power over the horizon
	ReplacementUSD float64 // expected component replacements
	HorizonHours   float64

	// EnergyKWh is the facility energy behind EnergyUSD. It is the flat
	// nameplate estimate from Estimate, or the simulated figure after
	// WithMeasuredEnergy.
	EnergyKWh float64
	// CarbonKg is the energy's carbon footprint; populated by
	// WithMeasuredEnergy (and by EstimateWithPower's flat estimate when
	// a carbon intensity is configured).
	CarbonKg float64
	// EnergyMeasured reports that EnergyUSD/EnergyKWh came from a
	// simulated power trace rather than the nameplate estimate.
	EnergyMeasured bool
}

// TotalUSD returns the sum of all items.
func (b Breakdown) TotalUSD() float64 {
	return b.CapexUSD + b.EnergyUSD + b.ReplacementUSD
}

func (b Breakdown) String() string {
	return fmt.Sprintf("total $%.0f (capex $%.0f, energy $%.0f, replacement $%.0f over %.0fh)",
		b.TotalUSD(), b.CapexUSD, b.EnergyUSD, b.ReplacementUSD, b.HorizonHours)
}

// nodeSpecs lists the per-node component specs of a cluster config.
func nodeSpecs(cat *hardware.Catalog, cfg cluster.Config) ([]hardware.Spec, error) {
	var specs []hardware.Spec
	disk, err := cat.Get(cfg.DiskSpec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.DisksPerNode; i++ {
		specs = append(specs, disk)
	}
	for _, name := range []string{cfg.NICSpec, cfg.CPUSpec, cfg.MemSpec} {
		sp, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// Estimate prices a cluster configuration over horizonHours. Expected
// replacements use each component's mean time to failure: horizon/MTTF
// failures per component in steady state (each swap costs labor plus the
// component price).
func Estimate(cat *hardware.Catalog, cfg cluster.Config, book PriceBook, horizonHours float64) (Breakdown, error) {
	if err := book.Validate(); err != nil {
		return Breakdown{}, err
	}
	if horizonHours <= 0 {
		return Breakdown{}, fmt.Errorf("cost: horizon must be positive, got %v", horizonHours)
	}
	if err := cfg.Validate(); err != nil {
		return Breakdown{}, err
	}
	perNode, err := nodeSpecs(cat, cfg)
	if err != nil {
		return Breakdown{}, err
	}
	swSpec, err := cat.Get(cfg.SwitchSpec)
	if err != nil {
		return Breakdown{}, err
	}

	nodes := float64(cfg.Racks * cfg.NodesPerRack)
	var b Breakdown
	b.HorizonHours = horizonHours
	addSpec := func(sp hardware.Spec, count float64) {
		b.CapexUSD += sp.CostUSD * count
		kwh := sp.PowerWatts / 1000 * horizonHours * book.PUE
		b.EnergyKWh += kwh * count
		b.EnergyUSD += kwh * book.USDPerKWh * count
		mttf := sp.TTF.Mean()
		if mttf > 0 {
			expectedFailures := horizonHours / mttf * count
			b.ReplacementUSD += expectedFailures * (sp.CostUSD + book.ReplacementLaborUSD)
		}
	}
	for _, sp := range perNode {
		addSpec(sp, nodes)
	}
	// One ToR switch per rack plus one core switch.
	addSpec(swSpec, float64(cfg.Racks)+1)
	return b, nil
}

// EstimateWithPower prices a cluster plus its power delivery hierarchy:
// the base Estimate, the PDU and UPS capex/replacement spend, and —
// when the power config carries a carbon intensity — the flat carbon
// estimate for the nameplate energy. Use WithMeasuredEnergy afterwards
// to substitute simulated energy for the nameplate figure.
func EstimateWithPower(cat *hardware.Catalog, cfg cluster.Config, pcfg power.Config, book PriceBook, horizonHours float64) (Breakdown, error) {
	b, err := Estimate(cat, cfg, book, horizonHours)
	if err != nil {
		return Breakdown{}, err
	}
	if !pcfg.Enabled {
		return b, nil
	}
	if err := pcfg.Validate(); err != nil {
		return Breakdown{}, err
	}
	addHierarchy := func(specName string, kind hardware.Kind, count float64) error {
		if count <= 0 || specName == "" {
			return nil
		}
		sp, err := cat.Get(specName)
		if err != nil {
			return err
		}
		if sp.Kind != kind {
			return fmt.Errorf("cost: spec %q is a %s, not a %s", specName, sp.Kind, kind)
		}
		b.CapexUSD += sp.CostUSD * count
		if mttf := sp.TTF.Mean(); mttf > 0 {
			b.ReplacementUSD += horizonHours / mttf * count * (sp.CostUSD + book.ReplacementLaborUSD)
		}
		return nil
	}
	// The clamp and spec default come from internal/power itself, so the
	// priced hierarchy is exactly the simulated one.
	pdus := pcfg.EffectivePDUs(cfg.Racks)
	if err := addHierarchy(pcfg.EffectivePDUSpec(), hardware.KindPDU, float64(pdus)); err != nil {
		return Breakdown{}, err
	}
	if err := addHierarchy(pcfg.UPSSpec, hardware.KindUPS, 1); err != nil {
		return Breakdown{}, err
	}
	carbon := pcfg.CarbonKgPerKWh
	if carbon == 0 {
		carbon = power.DefaultCarbon
	}
	b.CarbonKg = b.EnergyKWh * carbon
	return b, nil
}

// WithMeasuredEnergy replaces a breakdown's nameplate energy estimate
// with a simulated facility energy figure (kWh, PUE already applied)
// and reprices it, also refreshing the carbon footprint at the given
// intensity.
func WithMeasuredEnergy(b Breakdown, facilityKWh float64, carbonKgPerKWh float64, book PriceBook) Breakdown {
	b.EnergyKWh = facilityKWh
	b.EnergyUSD = facilityKWh * book.USDPerKWh
	b.CarbonKg = facilityKWh * carbonKgPerKWh
	b.EnergyMeasured = true
	return b
}

// PerUserMonthlyUSD converts a breakdown into a per-user monthly price
// given the user population, amortizing capex over the horizon.
func PerUserMonthlyUSD(b Breakdown, users int) (float64, error) {
	if users < 1 {
		return 0, fmt.Errorf("cost: need >= 1 user, got %d", users)
	}
	months := b.HorizonHours / (hardware.HoursPerYear / 12)
	if months <= 0 {
		return 0, fmt.Errorf("cost: non-positive horizon")
	}
	return b.TotalUSD() / months / float64(users), nil
}
