package cost

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/power"
)

func cfg() cluster.Config {
	return cluster.Config{
		Racks: 2, NodesPerRack: 5,
		DiskSpec: "hdd-7200", DisksPerNode: 4,
		NICSpec: "nic-10g", CPUSpec: "cpu-8c", MemSpec: "mem-16g",
		SwitchSpec: "switch-48p-10g",
	}
}

func TestEstimateBreakdown(t *testing.T) {
	cat := hardware.DefaultCatalog()
	b, err := Estimate(cat, cfg(), DefaultPriceBook(), 3*hardware.HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed capex: 10 nodes x (4x$100 + $250 + $400 + $160)
	// + 3 switches x $5000 = 10x1210 + 15000 = 27100.
	if b.CapexUSD != 27100 {
		t.Errorf("capex = %v, want 27100", b.CapexUSD)
	}
	if b.EnergyUSD <= 0 {
		t.Error("energy cost must be positive")
	}
	if b.ReplacementUSD <= 0 {
		t.Error("replacement cost must be positive over 3 years")
	}
	if b.TotalUSD() != b.CapexUSD+b.EnergyUSD+b.ReplacementUSD {
		t.Error("total != sum of parts")
	}
	if b.String() == "" {
		t.Error("empty breakdown string")
	}
}

func TestSSDCostsMoreThanHDD(t *testing.T) {
	cat := hardware.DefaultCatalog()
	hdd := cfg()
	ssd := cfg()
	ssd.DiskSpec = "ssd-nvme"
	bh, err := Estimate(cat, hdd, DefaultPriceBook(), hardware.HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Estimate(cat, ssd, DefaultPriceBook(), hardware.HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	if bs.TotalUSD() <= bh.TotalUSD() {
		t.Errorf("NVMe config $%v should cost more than HDD config $%v",
			bs.TotalUSD(), bh.TotalUSD())
	}
}

func TestLongerHorizonCostsMore(t *testing.T) {
	cat := hardware.DefaultCatalog()
	b1, err := Estimate(cat, cfg(), DefaultPriceBook(), hardware.HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := Estimate(cat, cfg(), DefaultPriceBook(), 3*hardware.HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	if b3.TotalUSD() <= b1.TotalUSD() {
		t.Error("3-year cost should exceed 1-year cost")
	}
	if b3.CapexUSD != b1.CapexUSD {
		t.Error("capex should not depend on horizon")
	}
}

func TestEstimateValidation(t *testing.T) {
	cat := hardware.DefaultCatalog()
	if _, err := Estimate(cat, cfg(), DefaultPriceBook(), 0); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := cfg()
	bad.DiskSpec = "bogus"
	if _, err := Estimate(cat, bad, DefaultPriceBook(), 100); err == nil {
		t.Error("unknown spec accepted")
	}
	badBook := PriceBook{USDPerKWh: -1, PUE: 1.5}
	if _, err := Estimate(cat, cfg(), badBook, 100); err == nil {
		t.Error("negative electricity price accepted")
	}
}

func TestPerUserMonthly(t *testing.T) {
	b := Breakdown{CapexUSD: 12000, HorizonHours: hardware.HoursPerYear}
	got, err := PerUserMonthlyUSD(b, 100)
	if err != nil {
		t.Fatal(err)
	}
	// $12000 over 12 months over 100 users = $10/user/month.
	if got < 9.9 || got > 10.1 {
		t.Errorf("per-user monthly = %v, want ~10", got)
	}
	if _, err := PerUserMonthlyUSD(b, 0); err == nil {
		t.Error("0 users accepted")
	}
}

func testClusterConfig() cluster.Config { return cfg() }

func TestEstimateWithPowerAddsHierarchy(t *testing.T) {
	cat := hardware.DefaultCatalog()
	cfg := testClusterConfig()
	book := DefaultPriceBook()
	base, err := Estimate(cat, cfg, book, 8766)
	if err != nil {
		t.Fatal(err)
	}
	if base.EnergyKWh <= 0 {
		t.Fatal("nameplate energy kWh not recorded")
	}
	pcfg := power.Config{Enabled: true, PDUs: 2, PDUSpec: "pdu-basic", UPSSpec: "ups-240kva"}
	b, err := EstimateWithPower(cat, cfg, pcfg, book, 8766)
	if err != nil {
		t.Fatal(err)
	}
	pdu, _ := cat.Get("pdu-basic")
	ups, _ := cat.Get("ups-240kva")
	wantCapex := base.CapexUSD + 2*pdu.CostUSD + ups.CostUSD
	if math.Abs(b.CapexUSD-wantCapex) > 1e-9 {
		t.Errorf("capex = %v, want %v", b.CapexUSD, wantCapex)
	}
	if b.ReplacementUSD <= base.ReplacementUSD {
		t.Error("hierarchy replacement spend missing")
	}
	if b.CarbonKg <= 0 {
		t.Error("flat carbon estimate missing")
	}
	// Disabled power config must be a no-op.
	off, err := EstimateWithPower(cat, cfg, power.Config{}, book, 8766)
	if err != nil {
		t.Fatal(err)
	}
	if off != base {
		t.Error("disabled power config changed the breakdown")
	}
	// PDU count clamps to the rack count.
	many := pcfg
	many.PDUs = 100
	clamped, err := EstimateWithPower(cat, cfg, many, book, 8766)
	if err != nil {
		t.Fatal(err)
	}
	wantClamped := base.CapexUSD + float64(cfg.Racks)*pdu.CostUSD + ups.CostUSD
	if math.Abs(clamped.CapexUSD-wantClamped) > 1e-9 {
		t.Errorf("clamped capex = %v, want %v", clamped.CapexUSD, wantClamped)
	}
	// Wrong-kind specs are rejected.
	wrong := pcfg
	wrong.PDUSpec = "ssd-sata"
	if _, err := EstimateWithPower(cat, cfg, wrong, book, 8766); err == nil {
		t.Error("disk spec accepted as a PDU")
	}
}

func TestWithMeasuredEnergy(t *testing.T) {
	cat := hardware.DefaultCatalog()
	book := DefaultPriceBook()
	b, err := Estimate(cat, testClusterConfig(), book, 8766)
	if err != nil {
		t.Fatal(err)
	}
	m := WithMeasuredEnergy(b, 1000, 0.5, book)
	if !m.EnergyMeasured || m.EnergyKWh != 1000 {
		t.Fatalf("measured energy not applied: %+v", m)
	}
	if m.EnergyUSD != 1000*book.USDPerKWh {
		t.Errorf("energy USD = %v, want %v", m.EnergyUSD, 1000*book.USDPerKWh)
	}
	if m.CarbonKg != 500 {
		t.Errorf("carbon = %v, want 500", m.CarbonKg)
	}
	if m.CapexUSD != b.CapexUSD || m.ReplacementUSD != b.ReplacementUSD {
		t.Error("measured energy changed non-energy items")
	}
}
