// Performance: the §3 performance-SLA use case plus the §4.5 limpware
// study — tenant latency percentiles under co-location, a repair storm,
// and a degraded NIC, simulated on the per-node resource models.
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	type variant struct {
		label     string
		coTenant  bool
		storm     bool
		nicFactor float64
	}
	variants := []variant{
		{"tenant A alone", false, false, 1},
		{"A + analytics tenant B", true, false, 1},
		{"A + B + repair storm", true, true, 1},
		{"A alone, one NIC at 5% (limpware)", false, false, 0.05},
	}

	fmt.Printf("%-36s %9s %9s %9s\n", "scenario", "p50 (ms)", "p95 (ms)", "p99 (ms)")
	for _, v := range variants {
		lat, err := run(v.coTenant, v.storm, v.nicFactor)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %9.1f %9.1f %9.1f\n", v.label,
			lat[0]*1000, lat[1]*1000, lat[2]*1000)
	}
	fmt.Println("\nEvery row uses identical hardware; only software placement and component")
	fmt.Println("health differ — the hardware/software interdependency of §1.")
}

// run simulates 20,000 requests of tenant A and returns p50/p95/p99.
func run(coTenant, storm bool, nicFactor float64) ([3]float64, error) {
	s := sim.New(99)
	var nodes []*workload.NodeModel
	for i := 0; i < 4; i++ {
		n, err := workload.NewNodeModel(s, fmt.Sprintf("node-%d", i), workload.NodeSpec{
			Cores: 8, DiskIOPS: 210, NICMBps: 1250,
		})
		if err != nil {
			return [3]float64{}, err
		}
		nodes = append(nodes, n)
	}
	if nicFactor < 1 {
		if err := nodes[0].DegradeNIC(nicFactor); err != nil {
			return [3]float64{}, err
		}
	}

	a, err := workload.NewWorkload(s, "A", workload.Profile{
		Name: "oltp",
		CPU:  dist.Must(dist.ExpMean(0.002)),
		Disk: dist.Must(dist.ExpMean(1.0)),
		Net:  dist.Must(dist.ExpMean(0.25)),
	}, nodes)
	if err != nil {
		return [3]float64{}, err
	}
	if err := a.StartOpen(dist.Must(dist.ExpMean(0.01)), 20000); err != nil {
		return [3]float64{}, err
	}

	if coTenant {
		b, err := workload.NewWorkload(s, "B", workload.Profile{
			Name: "analytics",
			CPU:  dist.Must(dist.ExpMean(0.02)),
			Disk: dist.Must(dist.ExpMean(4.0)),
		}, nodes)
		if err != nil {
			return [3]float64{}, err
		}
		if err := b.StartOpen(dist.Must(dist.ExpMean(0.08)), 3000); err != nil {
			return [3]float64{}, err
		}
	}
	if storm {
		for _, n := range nodes {
			if _, err := workload.BackgroundLoad(s, n, 0.25,
				workload.Demand{DiskOps: 12, NetMB: 24}); err != nil {
				return [3]float64{}, err
			}
		}
	}

	s.RunUntil(20000 * 0.01 * 1.5)
	lat := a.Latencies()
	if lat.N() == 0 {
		return [3]float64{}, fmt.Errorf("no completed requests")
	}
	return [3]float64{lat.Quantile(0.5), lat.Quantile(0.95), lat.Quantile(0.99)}, nil
}
