// Quickstart: run one availability what-if through the wind tunnel and
// check an SLA — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	windtunnel "repro"
)

func main() {
	// Start from the baseline design: 30 HDD/10GbE nodes in 3 racks,
	// 1000 tenants, 3-way replication, parallel repair, one year.
	sc := windtunnel.DefaultScenario()
	sc.Users = 500 // keep the quickstart fast

	res, err := windtunnel.Run(sc, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d trials of %q over %.0f hours\n",
		res.Trials, sc.Name, sc.HorizonHours)
	fmt.Printf("  availability:        %.6f (95%% CI +-%.2g)\n",
		res.Metrics["availability"], res.CI["availability"])
	fmt.Printf("  data loss prob:      %.2g\n", res.Metrics["loss_prob"])
	fmt.Printf("  node failures/trial: %.1f\n", res.Metrics["node_failures"])
	fmt.Printf("  repairs/trial:       %.1f\n", res.Metrics["repairs"])

	// Would this design meet a three-nines availability SLA?
	slaCheck, err := windtunnel.AvailabilitySLA(0.999)
	if err != nil {
		log.Fatal(err)
	}
	verdict, err := slaCheck.Check(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSLA: %v\n", verdict)
}
