// Repair trade-off: the paper's §1 motivating example, end to end — can
// n-1 replicas with a faster network and parallel repair provide the
// availability of n replicas with slow serial repair, at lower storage
// cost? "Unavailable" here is §1's strict criterion: zero up-to-date
// copies of the data.
package main

import (
	"fmt"
	"log"

	windtunnel "repro"
	"repro/internal/cost"
	"repro/internal/dist"
	"repro/internal/hardware"
	"repro/internal/repair"
	"repro/internal/storage"
)

func main() {
	type option struct {
		label    string
		replicas int
		nic      string
		mode     repair.Mode
		conc     int
	}
	options := []option{
		{"n=3, 1GbE, serial repair", 3, "nic-1g", repair.Serial, 1},
		{"n=2, 1GbE, serial repair", 2, "nic-1g", repair.Serial, 1},
		{"n=2, 10GbE, parallel repair", 2, "nic-10g", repair.Parallel, 16},
	}

	fmt.Printf("%-30s %16s %14s %10s %10s\n",
		"design", "zero-copy frac", "repair max h", "storage x", "capex $")
	for _, o := range options {
		sc := windtunnel.DefaultScenario()
		sc.Cluster.Racks = 2
		sc.Cluster.NodesPerRack = 10
		sc.Cluster.NICSpec = o.nic
		sc.Cluster.NodeTTF = dist.Must(dist.NewWeibull(0.7, 475)) // mean ~600 h
		sc.Cluster.NodeRepair = dist.Must(dist.LogNormalFromMoments(12, 1.2))
		sc.Users = 2000
		sc.ObjectSizeMB = 1024
		sc.Scheme = storage.ReplicationScheme(o.replicas)
		sc.Repair = repair.Config{
			Mode: o.mode, MaxConcurrent: o.conc,
			Detection: dist.Must(dist.NewDeterministic(0.1)),
		}
		sc.HorizonHours = hardware.HoursPerYear
		sc.Seed = 42

		res, err := windtunnel.Run(sc, 8)
		if err != nil {
			log.Fatal(err)
		}
		breakdown, err := cost.Estimate(hardware.DefaultCatalog(), sc.Cluster,
			cost.DefaultPriceBook(), sc.HorizonHours)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %16.3g %14.3g %10.1f %10.0f\n", o.label,
			res.Metrics["zero_copy_fraction"], res.Metrics["repair_makespan"],
			sc.Scheme.Overhead(), breakdown.CapexUSD)
	}
	fmt.Println("\nDropping to n=2 with the same slow repair raises the zero-copy exposure;")
	fmt.Println("adding the faster network and parallel repair wins it back (repair window")
	fmt.Println("~10x shorter) while storing a third less data. Zero-copy windows are rare")
	fmt.Println("events: raise the trial count for tighter estimates. This is the §1")
	fmt.Println("interaction an iterative software-then-hardware design process misses.")
}
