// Figure 1: regenerate the paper's only quantitative artifact — the
// probability that at least one of 10,000 customers loses its majority
// quorum, as node failures mount — and overlay the Monte-Carlo wind
// tunnel against the exact combinatorics (the §4.3 validation story).
package main

import (
	"fmt"
	"log"

	windtunnel "repro"
)

func main() {
	configs := []struct {
		label     string
		placement string
		replicas  int
		nodes     int
	}{
		{"R-3-10", "random", 3, 10},
		{"RR-3-10", "roundrobin", 3, 10},
		{"R-3-30", "random", 3, 30},
		{"RR-3-30", "roundrobin", 3, 30},
		{"R-5-30", "random", 5, 30},
		{"RR-5-30", "roundrobin", 5, 30},
	}
	const users = 10000
	const trials = 2000

	for _, c := range configs {
		curve, err := windtunnel.Figure1Curve(windtunnel.Figure1Config{
			N: c.nodes, Replicas: c.replicas, Users: users,
			Placement: c.placement, Trials: trials, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — P(>=1 of %d users unavailable) vs failed nodes\n", c.label, users)
		fmt.Printf("%9s  %8s  %8s  %s\n", "failures", "sim", "exact", "")
		for _, pt := range curve {
			if pt.Probability == 1 && pt.Exact == 1 && pt.Config.Failures > c.replicas+3 {
				fmt.Printf("%9s  (saturated at 1.0 beyond this point)\n", "...")
				break
			}
			bar := asciiBar(pt.Probability, 30)
			fmt.Printf("%9d  %8.4f  %8.4f  %s\n", pt.Config.Failures, pt.Probability, pt.Exact, bar)
		}
	}
	fmt.Println("\nShapes to note (as in the paper): RoundRobin lies below Random at small")
	fmt.Println("failure counts with many users; n=5 lies below n=3; larger clusters shift")
	fmt.Println("the Random curves right in per-user terms.")
}

func asciiBar(p float64, width int) string {
	n := int(p * float64(width))
	bar := make([]byte, n)
	for i := range bar {
		bar[i] = '#'
	}
	return string(bar)
}
