// Provisioning: the §3 use case — "should I invest in storage or
// replication to satisfy the SLAs of my customers and minimize total
// operating cost?" — posed declaratively in WTQL (§4.1) and answered by
// the wind tunnel with dominance pruning (§4.2).
package main

import (
	"fmt"
	"log"

	windtunnel "repro"
)

func main() {
	// Sweep replication factor (declared MONOTONE: more replicas never
	// hurt availability, so a failure at n=5 prunes n=3 and n=2) and
	// placement policy; require three nines and rank survivors by cost.
	rs, err := windtunnel.Query(`
		SIMULATE availability
		VARY storage.replication IN (2, 3, 5) MONOTONE,
		     storage.placement IN ('random', 'rackaware')
		WITH users = 500, trials = 4, horizon_hours = 4000,
		     cluster.racks = 3, cluster.nodes_per_rack = 5,
		     node.mttf_hours = 1500, node.repair_hours = 12,
		     repair.detection_hours = 6, object_mb = 64, seed = 11
		WHERE sla.availability >= 0.999
		ORDER BY storage.overhead ASC
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("configurations meeting availability >= 0.999, least storage first:")
	fmt.Print(rs.Render())

	if len(rs.Rows) > 0 {
		best := rs.Rows[0]
		fmt.Printf("recommendation: replication=%s placement=%s (%.1fx storage, $%.0f total, availability %.6f)\n",
			best.Config["storage.replication"], best.Config["storage.placement"],
			best.Metrics["storage.overhead"], best.Metrics["cost.total"],
			best.Metrics["availability"])
	}
}
