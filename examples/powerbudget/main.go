// Power budget: the power & energy subsystem end to end — the three
// scenario classes internal/power opens up:
//
//  1. PDU failure domains: a PDU outage takes down exactly the racks it
//     feeds, nested with the ToR domains (restoring power never
//     un-fails a dead switch).
//  2. Utility outages: UPS battery ride-through vs generator start vs
//     facility blackout, resolved per outage.
//  3. Power capping: throttling service rates to shave peak power, and
//     what that 20% cap costs in availability — with the energy-aware
//     TCO from the simulated kWh.
package main

import (
	"fmt"
	"log"

	windtunnel "repro"
	"repro/internal/dist"
	"repro/internal/power"
)

func main() {
	// --- 1 + 2: hierarchy failures over one simulated year ---------------
	sc := windtunnel.DefaultScenario()
	sc.Cluster.Racks = 4
	sc.Cluster.NodesPerRack = 5
	sc.Users = 300
	sc.Power = power.Config{
		Enabled: true,
		// Two PDUs, each feeding two racks.
		PDUs: 2, PDUSpec: "pdu-basic",
		UPSSpec: "ups-240kva",
		// Utility outages a few times a year, minutes-to-hours long.
		UtilityTTF:    dist.Must(dist.ExpMean(2000)),
		UtilityRepair: dist.Must(dist.LogNormalFromMoments(2, 1.5)),
		UPSMinutes:    15,
		// The generator usually starts, in ~12 minutes.
		GeneratorStartProb:  0.9,
		GeneratorStartHours: 0.2,
	}

	res, err := windtunnel.Run(sc, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchy scenario: %d racks on %d PDUs, UPS + generator, %d trials\n",
		sc.Cluster.Racks, sc.Power.PDUs, res.Trials)
	fmt.Printf("  availability:       %.6f\n", res.Metrics["availability"])
	fmt.Printf("  utility outages:    %.1f /trial\n", res.Metrics["power_utility_outages"])
	fmt.Printf("  UPS ride-throughs:  %.1f /trial\n", res.Metrics["power_ride_through_ok"])
	fmt.Printf("  generator starts:   %.1f /trial\n", res.Metrics["power_generator_starts"])
	fmt.Printf("  facility blackouts: %.1f /trial\n", res.Metrics["power_loss_events"])
	fmt.Printf("  PDU failures:       %.1f /trial\n", res.Metrics["power_pdu_failures"])
	fmt.Printf("  loss probability:   %.2g   (outages interrupt, they do not destroy)\n",
		res.Metrics["loss_prob"])
	fmt.Printf("  facility energy:    %.0f kWh, peak %.2f kW, %.0f kg CO2\n\n",
		res.Metrics["energy_kwh"], res.Metrics["peak_kw"], res.Metrics["carbon_kg"])

	// --- 3: the power-cap sweep, declaratively -------------------------
	// One WTQL query sweeps the cap depth; energy_kwh/peak_kw appear as
	// columns and cost.total is priced from the simulated energy.
	rs, err := windtunnel.Query(`
		SIMULATE availability
		VARY power.cap IN (0, 0.1, 0.2, 0.3)
		WITH users = 300, cluster.racks = 2, cluster.nodes_per_rack = 5,
		     net.nic = 'nic-1g', object_mb = 2000,
		     node.ttf = 'exp(mean=400)', node.repair = 'det(12)',
		     horizon_hours = 4000, trials = 4, crn = TRUE
		ORDER BY power.cap ASC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("power-cap sweep (energy-aware TCO):")
	fmt.Print(rs.Render())
}
