// Package windtunnel is the public facade of the data center wind tunnel,
// a simulation framework for integrated hardware/software data center
// design reproducing Floratou, Bertsch, Patel and Laskaris, "Towards
// Building Wind Tunnels for Data Center Design", PVLDB 7(9), 2014.
//
// The wind tunnel answers what-if questions about data center designs by
// discrete-event simulation of both the hardware (disks, NICs, switches,
// with realistic Weibull/LogNormal failure models) and the software
// (replication, placement, quorum protocols, repair strategies) — see
// DESIGN.md for the full system inventory.
//
// # Quick start
//
//	res, err := windtunnel.Run(windtunnel.DefaultScenario(), 10)
//
// # Declarative what-if queries (§4.1 of the paper)
//
//	rs, err := windtunnel.Query(`
//	    SIMULATE availability
//	    VARY storage.replication IN (3, 5) MONOTONE,
//	         storage.placement IN ('random', 'roundrobin')
//	    WITH users = 1000, trials = 10
//	    WHERE sla.availability >= 0.999
//	    ORDER BY cost.total ASC`)
//	fmt.Print(rs.Render())
//
// # Figure 1
//
//	point, err := windtunnel.Figure1(windtunnel.Figure1Config{
//	    N: 30, Replicas: 3, Failures: 4, Users: 10000,
//	    Placement: "random", Trials: 10000,
//	})
package windtunnel

import (
	"repro/internal/core"
	"repro/internal/sla"
	"repro/internal/validate"
	"repro/internal/wtql"
)

// Scenario describes one availability what-if experiment. See
// core.Scenario for field documentation.
type Scenario = core.Scenario

// RunResult aggregates simulation trials.
type RunResult = core.RunResult

// Runner controls trial replication, CI stopping and early abort.
type Runner = core.Runner

// AbortRule enables §4.2 early abort inside trials.
type AbortRule = core.AbortRule

// Explorer sweeps a design space with optional dominance pruning and
// analytic screening.
type Explorer = core.Explorer

// ScreenRule configures the §2.2 analytic screening pass: design points
// whose closed-form availability bounds clear (or provably miss) every
// availability SLA by the margin are decided without simulation.
type ScreenRule = core.ScreenRule

// Figure1Config parameterizes a point of the paper's Figure 1.
type Figure1Config = core.Figure1Config

// Figure1Result is a Monte-Carlo estimate with its exact counterpart.
type Figure1Result = core.Figure1Result

// SLA is a checkable service-level agreement.
type SLA = sla.SLA

// ValidationReport compares simulation against a closed form.
type ValidationReport = validate.Report

// ResultSet is a WTQL query result.
type ResultSet = wtql.ResultSet

// DefaultScenario returns the baseline configuration: 30 HDD/10GbE nodes
// in 3 racks, 1000 users, 3-way replication, parallel repair, one year.
func DefaultScenario() Scenario { return core.DefaultScenario() }

// Run executes trials replications of the scenario and aggregates the
// availability, durability and repair metrics.
func Run(sc Scenario, trials int) (*RunResult, error) {
	return Runner{Trials: trials}.Run(sc)
}

// Figure1 estimates one point of the paper's Figure 1 by Monte-Carlo
// simulation, alongside the exact combinatorial value when one exists.
func Figure1(cfg Figure1Config) (Figure1Result, error) {
	return core.Figure1MonteCarlo(cfg)
}

// Figure1Curve sweeps the failure count for one configuration, producing
// one full curve of Figure 1.
func Figure1Curve(cfg Figure1Config) ([]Figure1Result, error) {
	return core.Figure1Curve(cfg)
}

// Query parses and executes a WTQL statement with default execution
// settings.
func Query(text string) (*ResultSet, error) {
	return (&wtql.Engine{}).Execute(text)
}

// Validate runs the §4.3 validation suite: simulator vs closed forms.
func Validate(seed uint64) ([]ValidationReport, error) {
	return validate.RunAll(seed)
}

// AvailabilitySLA returns an SLA requiring availability >= min.
func AvailabilitySLA(min float64) (SLA, error) { return sla.NewAvailability(min) }

// DurabilitySLA returns an SLA bounding the loss probability.
func DurabilitySLA(max float64) (SLA, error) { return sla.NewDurability(max) }

// PowerBudgetSLA returns an SLA bounding the facility's peak power
// draw (kW). Requires a power-enabled scenario (Scenario.Power).
func PowerBudgetSLA(maxKW float64) (SLA, error) { return sla.NewPowerBudget(maxKW) }

// EnergyCostSLA returns an SLA capping the simulated horizon's energy
// bill at maxUSD, pricing facility energy at usdPerKWh.
func EnergyCostSLA(maxUSD, usdPerKWh float64) (SLA, error) {
	return sla.NewEnergyCost(maxUSD, usdPerKWh)
}
