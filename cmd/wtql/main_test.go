package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// fakeDaemon mimics the windtunneld endpoints one -trace run touches: a
// query stream that completes normally, and a trace endpoint whose
// answer the test controls.
func fakeDaemon(t *testing.T, traceStatus int, traceBody string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"type":"job","id":"j1"}`)
		fmt.Fprintln(w, `{"type":"point","done":1,"total":1}`)
		fmt.Fprintln(w, `{"type":"result","table":"nodes availability\n5 0.9\n","executed":1}`)
	})
	mux.HandleFunc("GET /v1/jobs/j1/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(traceStatus)
		fmt.Fprintln(w, traceBody)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// captureStreams runs fn with stdout and stderr redirected to buffers.
func captureStreams(t *testing.T, fn func()) (stdout, stderr string) {
	t.Helper()
	capture := func(f **os.File) func() string {
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		orig := *f
		*f = w
		done := make(chan string, 1)
		go func() {
			var b bytes.Buffer
			b.ReadFrom(r)
			done <- b.String()
		}()
		return func() string {
			w.Close()
			*f = orig
			return <-done
		}
	}
	outDone := capture(&os.Stdout)
	errDone := capture(&os.Stderr)
	fn()
	return outDone(), errDone()
}

// TestTraceEvictedNotice: when the daemon reports the job's trace was
// evicted from its bounded ring, wtql -trace prints the table, notes
// the eviction on stderr, and still succeeds — the query result is
// complete even though the waterfall is gone.
func TestTraceEvictedNotice(t *testing.T) {
	ts := fakeDaemon(t, http.StatusNotFound, `{"type":"error","error":"trace evicted"}`)
	var err error
	stdout, stderr := captureStreams(t, func() {
		err = runRemote(context.Background(), []string{ts.URL}, "SIMULATE ...", 0, false, 0, true)
	})
	if err != nil {
		t.Fatalf("evicted trace must not fail the run: %v", err)
	}
	if !strings.Contains(stdout, "nodes availability") {
		t.Fatalf("result table missing from stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "trace evicted") {
		t.Fatalf("stderr should carry the eviction notice: %q", stderr)
	}
	if strings.Contains(stderr, "trace unavailable") {
		t.Fatalf("eviction should not read as a generic failure: %q", stderr)
	}
}

// TestTraceRendersWhenPresent: the happy path still draws the waterfall.
func TestTraceRendersWhenPresent(t *testing.T) {
	tr := traceResponse{Job: "j1", TraceID: "abc", Spans: []traceSpan{{
		SpanID: "s1", Name: "job", Worker: "w1",
		Start: time.Unix(1700000000, 0), Duration: time.Second,
	}}}
	body, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	ts := fakeDaemon(t, http.StatusOK, string(body))
	stdout, stderr := captureStreams(t, func() {
		err = runRemote(context.Background(), []string{ts.URL}, "SIMULATE ...", 0, false, 0, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "nodes availability") {
		t.Fatalf("result table missing: %q", stdout)
	}
	if !strings.Contains(stderr, "trace abc for j1") {
		t.Fatalf("waterfall missing from stderr: %q", stderr)
	}
}

// TestTraceOtherErrorsStayGeneric: a non-eviction trace failure (daemon
// restarted without the job, proxy error) reports as unavailable but
// still does not fail the run.
func TestTraceOtherErrorsStayGeneric(t *testing.T) {
	ts := fakeDaemon(t, http.StatusNotFound, `{"type":"error","error":"no such job"}`)
	var err error
	_, stderr := captureStreams(t, func() {
		err = runRemote(context.Background(), []string{ts.URL}, "SIMULATE ...", 0, false, 0, true)
	})
	if err != nil {
		t.Fatalf("trace failure must not fail the run: %v", err)
	}
	if !strings.Contains(stderr, "trace unavailable") || !strings.Contains(stderr, "no such job") {
		t.Fatalf("generic trace failure should say why: %q", stderr)
	}
}
