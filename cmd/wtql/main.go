// Command wtql executes Wind Tunnel Query Language statements — the
// declarative what-if interface of §4.1 of the paper.
//
// Usage:
//
//	wtql -q "SIMULATE availability VARY storage.replication IN (3,5) ..."
//	wtql -f query.wtql
//	echo "SIMULATE ..." | wtql
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"

	"repro/internal/results"
	"repro/internal/wtql"
)

func main() {
	query := flag.String("q", "", "query text")
	file := flag.String("f", "", "file containing the query")
	trials := flag.Int("trials", 5, "default trials per configuration")
	workers := flag.Int("workers", 0, "point-level parallelism (0 = GOMAXPROCS)")
	storePath := flag.String("store", "", "JSON result archive to append executed configurations to (§4.4)")
	flag.Parse()

	text := *query
	if text == "" && *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if text == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if text == "" {
		fatal(fmt.Errorf("no query given: use -q, -f or stdin"))
	}

	engine := &wtql.Engine{Trials: *trials, Workers: *workers}
	if *storePath != "" {
		store, err := results.Load(*storePath)
		if errors.Is(err, fs.ErrNotExist) {
			store = results.NewStore()
		} else if err != nil {
			fatal(err)
		}
		engine.Store = store
	}
	rs, err := engine.Execute(text)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rs.Render())
	if engine.Store != nil {
		if err := engine.Store.Save(*storePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "archived %d total runs in %s\n", engine.Store.Len(), *storePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wtql:", err)
	os.Exit(1)
}
