// Command wtql executes Wind Tunnel Query Language statements — the
// declarative what-if interface of §4.1 of the paper — either locally or
// against a running windtunneld daemon.
//
// Usage:
//
//	wtql -q "SIMULATE availability VARY storage.replication IN (3,5) ..."
//	wtql -f query.wtql -timeout 2m
//	echo "SIMULATE ..." | wtql
//	wtql -server http://localhost:8866 -q "SIMULATE ..."   # daemon mode
//
// In daemon mode the query is POSTed to /v1/query; per-design-point
// progress events stream to stderr and the final table (byte-identical
// to a local run) prints to stdout. -server accepts a comma-separated
// failover list (e.g. two fleet coordinators); a dropped connection —
// daemon restart, coordinator death — is retried within the -reconnect
// window with exponential backoff: first by resuming the same job's
// stream (GET /v1/jobs/{id}/stream?from=<received>), else by
// re-submitting the query to the next server with from=<received> so
// already-delivered points are not replayed. A mid-stream daemon
// restart is invisible except for latency. SIGINT/SIGTERM and -timeout
// cancel the run.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/results"
	"repro/internal/wtql"
)

func main() {
	query := flag.String("q", "", "query text")
	file := flag.String("f", "", "file containing the query")
	trials := flag.Int("trials", 5, "default trials per configuration")
	workers := flag.Int("workers", 0, "point-level parallelism (0 = GOMAXPROCS)")
	storePath := flag.String("store", "", "JSON result archive to append executed configurations to (§4.4)")
	server := flag.String("server", "", "windtunneld base URL(s), comma-separated failover list (empty = execute locally)")
	timeout := flag.Duration("timeout", 0, "abort the query after this duration (0 = no limit)")
	progress := flag.Bool("progress", false, "print per-point progress to stderr (daemon mode)")
	reconnect := flag.Duration("reconnect", 45*time.Second, "daemon mode: keep reconnecting/resuming a dropped stream for up to this long (0 = fail fast)")
	trace := flag.Bool("trace", false, "daemon mode: after the result, print the job's distributed-trace waterfall to stderr")
	flag.Parse()

	text := *query
	if text == "" && *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if text == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if text == "" {
		fatal(fmt.Errorf("no query given: use -q, -f or stdin"))
	}

	// SIGINT/SIGTERM cancel the run; -timeout bounds it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *server != "" {
		// Send trials only when the flag was given explicitly: the
		// daemon has its own -trials default, and the client's flag
		// default must not silently override it. Flags that only make
		// sense locally are refused rather than silently ignored.
		remoteTrials := 0
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "trials":
				remoteTrials = *trials
			case "store", "workers":
				fatal(fmt.Errorf("-%s has no effect with -server: the daemon owns its archive and worker pool", f.Name))
			}
		})
		servers := splitServers(*server)
		if len(servers) == 0 {
			fatal(fmt.Errorf("-server given but empty"))
		}
		if err := runRemote(ctx, servers, text, remoteTrials, *progress, *reconnect, *trace); err != nil {
			fatal(err)
		}
		return
	}
	if *trace {
		fatal(fmt.Errorf("-trace has no effect without -server: tracing lives in the daemon"))
	}

	engine := &wtql.Engine{Trials: *trials, Workers: *workers}
	if *storePath != "" {
		store, err := results.Load(*storePath)
		if errors.Is(err, fs.ErrNotExist) {
			store = results.NewStore()
		} else if err != nil {
			fatal(err)
		}
		engine.Store = store
	}
	rs, err := engine.ExecuteContext(ctx, text)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rs.Render())
	if engine.Store != nil {
		if err := engine.Store.Save(*storePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "archived %d total runs in %s\n", engine.Store.Len(), *storePath)
	}
}

// splitServers parses the comma-separated -server list.
func splitServers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// permanentError marks a failure no reconnect can fix (a bad query, a
// server-reported job error) — retrying would just repeat it.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// remoteSession is one query's daemon-mode execution state across
// however many connections it takes: which server owns the job, how
// many point events arrived, and whether the table already printed.
type remoteSession struct {
	servers  []string
	si       int // current server index
	text     string
	trials   int
	progress bool

	jobID  string
	jobSrv int // index of the server that accepted jobID
	points int // point events received so far (the resume cursor)
	start  time.Time
}

// runRemote executes the query against a windtunneld daemon (or a
// failover list of them), streaming progress to stderr and the final
// table to stdout. A dropped connection is retried within the reconnect
// window: the same server is asked to resume the job's stream from the
// last received point; a server that no longer knows the job (or a
// different server after failover) gets the query re-submitted with
// from=<received>, so the client never sees a point event twice and the
// table prints exactly once. trials == 0 leaves the daemon's default in
// force.
func runRemote(ctx context.Context, servers []string, text string, trials int, progress bool, reconnect time.Duration, trace bool) error {
	s := &remoteSession{
		servers: servers, text: text, trials: trials,
		progress: progress, start: time.Now(),
	}
	deadline := time.Now().Add(reconnect)
	backoff := 200 * time.Millisecond
	for {
		got, err := s.attempt(ctx)
		if err == nil {
			if trace && s.jobID != "" {
				base := strings.TrimRight(s.servers[s.jobSrv], "/")
				tr, terr := fetchTrace(ctx, base, s.jobID)
				switch {
				case errors.Is(terr, errTraceEvicted):
					// The table printed; the waterfall just aged out of the
					// daemon's bounded trace ring. A notice, not a failure.
					fmt.Fprintln(os.Stderr, "wtql: trace evicted: the daemon's trace buffer dropped this job's spans (raise its retention or fetch the trace sooner); the result table above is complete")
				case terr != nil:
					fmt.Fprintf(os.Stderr, "wtql: trace unavailable: %v\n", terr)
				default:
					renderTrace(os.Stderr, tr)
				}
			}
			return nil
		}
		var perm permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if ctx.Err() != nil {
			return err
		}
		if got > 0 {
			// The stream made progress before dying: a live server is out
			// there, so restart the reconnect window and the backoff.
			deadline = time.Now().Add(reconnect)
			backoff = 200 * time.Millisecond
		} else if len(s.servers) > 1 {
			// Nothing at all from this server: fail over to the next one.
			s.si = (s.si + 1) % len(s.servers)
		}
		if reconnect <= 0 || time.Now().After(deadline) {
			return fmt.Errorf("stream lost and not recovered within %s: %w", reconnect, err)
		}
		fmt.Fprintf(os.Stderr, "wtql: connection lost (%v); retrying %s in %s\n",
			err, s.servers[s.si], backoff.Round(time.Millisecond))
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// attempt makes one connection and consumes its stream, returning how
// many NDJSON events arrived (0 means the server gave us nothing — the
// caller's cue to fail over). nil error means the table printed.
func (s *remoteSession) attempt(ctx context.Context) (events int, err error) {
	base := strings.TrimRight(s.servers[s.si], "/")

	// Prefer resuming the existing job's stream on the server that owns
	// it: the committed prefix is skipped server-side via from=, and a
	// daemon that restarted still has the job (replayed from its
	// journal) under the same id.
	if s.jobID != "" && s.si == s.jobSrv {
		req, rerr := http.NewRequestWithContext(ctx, "GET",
			fmt.Sprintf("%s/v1/jobs/%s/stream?from=%d", base, s.jobID, s.points), nil)
		if rerr != nil {
			return 0, rerr
		}
		resp, rerr := http.DefaultClient.Do(req)
		switch {
		case rerr != nil:
			return 0, rerr
		case resp.StatusCode == http.StatusOK:
			defer resp.Body.Close()
			return s.consume(resp)
		case resp.StatusCode == http.StatusNotFound:
			// Job unknown here (journaling off, or evicted): fall through
			// to a fresh submission with the resume cursor.
			resp.Body.Close()
		default:
			err := httpError(resp)
			resp.Body.Close()
			return 0, err
		}
	}

	payload := map[string]any{"query": s.text}
	if s.trials > 0 {
		payload["trials"] = s.trials
	}
	if s.points > 0 {
		// Re-submission after partial delivery: ask the server to skip
		// the points we already have. The sweep still completes in full
		// server-side (cache hits), so the table is unchanged.
		payload["from"] = s.points
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := httpError(resp)
		if resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusRequestEntityTooLarge {
			// The query itself is refused; no server will take it.
			return 0, permanentError{err}
		}
		return 0, err // 503 draining, 5xx: worth another server or another try
	}
	s.jobSrv = s.si
	return s.consume(resp)
}

// httpError renders a non-200 response. The daemon's refusals (400/503)
// are single JSON error objects; anything else (wrong port, proxy error
// page) is reported by status rather than fed to the NDJSON parser.
func httpError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var ev struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(bytes.TrimSpace(body), &ev) == nil && ev.Error != "" {
		return fmt.Errorf("server (HTTP %d): %s", resp.StatusCode, ev.Error)
	}
	return fmt.Errorf("server returned HTTP %d: %s", resp.StatusCode,
		strings.TrimSpace(string(body)))
}

// consume parses one connection's NDJSON stream, updating the session's
// resume cursor per event. nil error means the result event arrived and
// the table printed.
func (s *remoteSession) consume(resp *http.Response) (events int, err error) {
	// ReadBytes instead of a Scanner: the result event is one line
	// carrying every row plus the rendered table, and a fixed token cap
	// would make large sweeps fail client-side after the server already
	// did all the work.
	rd := bufio.NewReader(resp.Body)
	sawResult := false
	for {
		line, readErr := rd.ReadBytes('\n')
		if readErr != nil && readErr != io.EOF {
			return events, readErr
		}
		if len(bytes.TrimSpace(line)) == 0 {
			if readErr == io.EOF {
				break
			}
			continue
		}
		var ev struct {
			Type      string             `json:"type"`
			ID        string             `json:"id"`
			Error     string             `json:"error"`
			Done      int                `json:"done"`
			Total     int                `json:"total"`
			Cached    bool               `json:"cached"`
			Worker    string             `json:"worker"`
			Config    map[string]string  `json:"config"`
			Metrics   map[string]float64 `json:"metrics"`
			Table     string             `json:"table"`
			CacheHits int                `json:"cache_hits"`
			Executed  int                `json:"executed"`
			Degraded  bool               `json:"degraded"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			return events, fmt.Errorf("bad stream line %q: %w", line, err)
		}
		events++
		switch ev.Type {
		case "job":
			s.jobID = ev.ID
			s.jobSrv = s.si
			if s.progress {
				fmt.Fprintf(os.Stderr, "job %s accepted\n", ev.ID)
			}
		case "point":
			s.points++
			if s.progress {
				note := ""
				if ev.Cached {
					note = " (cached)"
				}
				if ev.Worker != "" {
					// Coordinator-merged streams name the worker that
					// served each point.
					note += " @" + ev.Worker
				}
				fmt.Fprintf(os.Stderr, "[%d/%d] %v%s\n", ev.Done, ev.Total, ev.Config, note)
			}
		case "result":
			sawResult = true
			fmt.Print(ev.Table)
			if ev.Degraded {
				// The table is still exact — degraded means the fleet did
				// not serve part of the sweep, the coordinator did. Warn on
				// stderr so scripted runs (and CI) can grep for it without
				// disturbing the table bytes on stdout.
				fmt.Fprintln(os.Stderr, "wtql: warning: job ran degraded (coordinator executed part of the sweep locally)")
			}
			if s.progress {
				fmt.Fprintf(os.Stderr, "%d executed, %d cache hits, %s elapsed\n",
					ev.Executed, ev.CacheHits, time.Since(s.start).Round(time.Millisecond))
			}
		case "error":
			return events, permanentError{fmt.Errorf("server: %s", ev.Error)}
		}
		if readErr == io.EOF {
			break
		}
	}
	if !sawResult {
		return events, fmt.Errorf("stream ended without a result")
	}
	return events, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wtql:", err)
	os.Exit(1)
}
