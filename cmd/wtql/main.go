// Command wtql executes Wind Tunnel Query Language statements — the
// declarative what-if interface of §4.1 of the paper — either locally or
// against a running windtunneld daemon.
//
// Usage:
//
//	wtql -q "SIMULATE availability VARY storage.replication IN (3,5) ..."
//	wtql -f query.wtql -timeout 2m
//	echo "SIMULATE ..." | wtql
//	wtql -server http://localhost:8866 -q "SIMULATE ..."   # daemon mode
//
// In daemon mode the query is POSTed to /v1/query; per-design-point
// progress events stream to stderr and the final table (byte-identical
// to a local run) prints to stdout. SIGINT/SIGTERM and -timeout cancel
// the run — locally at design-point granularity, remotely by dropping
// the connection (the daemon cancels the job when the client goes away).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/results"
	"repro/internal/wtql"
)

func main() {
	query := flag.String("q", "", "query text")
	file := flag.String("f", "", "file containing the query")
	trials := flag.Int("trials", 5, "default trials per configuration")
	workers := flag.Int("workers", 0, "point-level parallelism (0 = GOMAXPROCS)")
	storePath := flag.String("store", "", "JSON result archive to append executed configurations to (§4.4)")
	server := flag.String("server", "", "windtunneld base URL (empty = execute locally)")
	timeout := flag.Duration("timeout", 0, "abort the query after this duration (0 = no limit)")
	progress := flag.Bool("progress", false, "print per-point progress to stderr (daemon mode)")
	flag.Parse()

	text := *query
	if text == "" && *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if text == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if text == "" {
		fatal(fmt.Errorf("no query given: use -q, -f or stdin"))
	}

	// SIGINT/SIGTERM cancel the run; -timeout bounds it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *server != "" {
		// Send trials only when the flag was given explicitly: the
		// daemon has its own -trials default, and the client's flag
		// default must not silently override it. Flags that only make
		// sense locally are refused rather than silently ignored.
		remoteTrials := 0
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "trials":
				remoteTrials = *trials
			case "store", "workers":
				fatal(fmt.Errorf("-%s has no effect with -server: the daemon owns its archive and worker pool", f.Name))
			}
		})
		if err := runRemote(ctx, *server, text, remoteTrials, *progress); err != nil {
			fatal(err)
		}
		return
	}

	engine := &wtql.Engine{Trials: *trials, Workers: *workers}
	if *storePath != "" {
		store, err := results.Load(*storePath)
		if errors.Is(err, fs.ErrNotExist) {
			store = results.NewStore()
		} else if err != nil {
			fatal(err)
		}
		engine.Store = store
	}
	rs, err := engine.ExecuteContext(ctx, text)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rs.Render())
	if engine.Store != nil {
		if err := engine.Store.Save(*storePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "archived %d total runs in %s\n", engine.Store.Len(), *storePath)
	}
}

// runRemote posts the query to a windtunneld daemon and streams the
// NDJSON response: progress to stderr, the final table to stdout.
// trials == 0 leaves the daemon's configured default in force.
func runRemote(ctx context.Context, base, text string, trials int, progress bool) error {
	payload := map[string]any{"query": text}
	if trials > 0 {
		payload["trials"] = trials
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	url := strings.TrimRight(base, "/") + "/v1/query"
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		// The daemon's refusals (400/503) are single JSON error objects;
		// anything else (wrong port, proxy error page) gets reported by
		// status rather than fed to the NDJSON parser.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var ev struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(bytes.TrimSpace(body), &ev) == nil && ev.Error != "" {
			return fmt.Errorf("server (HTTP %d): %s", resp.StatusCode, ev.Error)
		}
		return fmt.Errorf("server returned HTTP %d: %s", resp.StatusCode,
			strings.TrimSpace(string(body)))
	}

	// ReadBytes instead of a Scanner: the result event is one line
	// carrying every row plus the rendered table, and a fixed token cap
	// would make large sweeps fail client-side after the server already
	// did all the work.
	rd := bufio.NewReader(resp.Body)
	sawResult := false
	start := time.Now()
	for {
		line, readErr := rd.ReadBytes('\n')
		if readErr != nil && readErr != io.EOF {
			return readErr
		}
		if len(bytes.TrimSpace(line)) == 0 {
			if readErr == io.EOF {
				break
			}
			continue
		}
		var ev struct {
			Type      string             `json:"type"`
			ID        string             `json:"id"`
			Error     string             `json:"error"`
			Done      int                `json:"done"`
			Total     int                `json:"total"`
			Cached    bool               `json:"cached"`
			Worker    string             `json:"worker"`
			Config    map[string]string  `json:"config"`
			Metrics   map[string]float64 `json:"metrics"`
			Table     string             `json:"table"`
			CacheHits int                `json:"cache_hits"`
			Executed  int                `json:"executed"`
			Degraded  bool               `json:"degraded"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("bad stream line %q: %w", line, err)
		}
		switch ev.Type {
		case "job":
			if progress {
				fmt.Fprintf(os.Stderr, "job %s accepted\n", ev.ID)
			}
		case "point":
			if progress {
				note := ""
				if ev.Cached {
					note = " (cached)"
				}
				if ev.Worker != "" {
					// Coordinator-merged streams name the worker that
					// served each point.
					note += " @" + ev.Worker
				}
				fmt.Fprintf(os.Stderr, "[%d/%d] %v%s\n", ev.Done, ev.Total, ev.Config, note)
			}
		case "result":
			sawResult = true
			fmt.Print(ev.Table)
			if ev.Degraded {
				// The table is still exact — degraded means the fleet did
				// not serve part of the sweep, the coordinator did. Warn on
				// stderr so scripted runs (and CI) can grep for it without
				// disturbing the table bytes on stdout.
				fmt.Fprintln(os.Stderr, "wtql: warning: job ran degraded (coordinator executed part of the sweep locally)")
			}
			if progress {
				fmt.Fprintf(os.Stderr, "%d executed, %d cache hits, %s elapsed\n",
					ev.Executed, ev.CacheHits, time.Since(start).Round(time.Millisecond))
			}
		case "error":
			return fmt.Errorf("server: %s", ev.Error)
		}
		if readErr == io.EOF {
			break
		}
	}
	if !sawResult {
		return fmt.Errorf("stream ended without a result (HTTP %d)", resp.StatusCode)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wtql:", err)
	os.Exit(1)
}
