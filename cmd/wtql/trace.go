package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// This file renders wtql's -trace waterfall: after a daemon-mode query
// finishes, the job's distributed trace (GET /v1/jobs/{id}/trace — on a
// coordinator, merged across every worker) is drawn as an indented
// waterfall, followed by the slowest spans and a per-worker breakdown.
// Everything prints to stderr so the table bytes on stdout stay
// byte-identical with and without -trace.

// traceSpan mirrors the service's span JSON.
type traceSpan struct {
	SpanID   string            `json:"span_id"`
	Parent   string            `json:"parent_id"`
	Name     string            `json:"name"`
	Worker   string            `json:"worker"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs"`
}

type traceResponse struct {
	Job     string      `json:"job"`
	TraceID string      `json:"trace_id"`
	Dropped uint64      `json:"dropped_spans"`
	Spans   []traceSpan `json:"spans"`
}

// errTraceEvicted marks the daemon's answer when the job finished but
// its spans aged out of the bounded trace ring before we asked — a
// successful run whose waterfall is simply gone, not a failure.
var errTraceEvicted = fmt.Errorf("trace evicted")

// fetchTrace retrieves a job's merged trace tree from the server that
// ran it. A 404 whose body says the trace was evicted maps to
// errTraceEvicted so the caller can degrade with a clear notice instead
// of a generic HTTP error.
func fetchTrace(ctx context.Context, base, jobID string) (*traceResponse, error) {
	req, err := http.NewRequestWithContext(ctx, "GET",
		fmt.Sprintf("%s/v1/jobs/%s/trace", base, jobID), nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		herr := httpError(resp)
		if resp.StatusCode == http.StatusNotFound && strings.Contains(herr.Error(), "trace evicted") {
			return nil, errTraceEvicted
		}
		return nil, herr
	}
	var tr traceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// maxWaterfallRows bounds the waterfall print: a big sweep has one span
// per design point, and past a screenful the summary sections carry the
// signal better than a thousand bars.
const maxWaterfallRows = 48

// renderTrace draws the waterfall plus the slowest-spans and per-worker
// summaries.
func renderTrace(w io.Writer, tr *traceResponse) {
	if len(tr.Spans) == 0 {
		fmt.Fprintf(w, "trace %s: no spans recorded\n", tr.TraceID)
		return
	}
	// The trace window: earliest start to latest end across all spans.
	t0 := tr.Spans[0].Start
	var t1 time.Time
	for _, sp := range tr.Spans {
		if sp.Start.Before(t0) {
			t0 = sp.Start
		}
		if end := sp.Start.Add(sp.Duration); end.After(t1) {
			t1 = end
		}
	}
	window := t1.Sub(t0)
	if window <= 0 {
		window = time.Nanosecond
	}

	fmt.Fprintf(w, "trace %s for %s: %d spans, %s total\n",
		tr.TraceID, tr.Job, len(tr.Spans), window.Round(time.Microsecond))
	if tr.Dropped > 0 {
		fmt.Fprintf(w, "  (%d spans dropped to the per-trace ring bound)\n", tr.Dropped)
	}

	// Tree assembly: children under their parent, roots = spans whose
	// parent was not recorded (or absent). Siblings draw in start order.
	byID := make(map[string]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		byID[sp.SpanID] = true
	}
	children := make(map[string][]traceSpan)
	var roots []traceSpan
	for _, sp := range tr.Spans {
		if sp.Parent != "" && byID[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(spans []traceSpan) {
		sort.SliceStable(spans, func(i, j int) bool {
			if !spans[i].Start.Equal(spans[j].Start) {
				return spans[i].Start.Before(spans[j].Start)
			}
			return spans[i].SpanID < spans[j].SpanID
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	rows := 0
	var draw func(sp traceSpan, depth int)
	draw = func(sp traceSpan, depth int) {
		if rows < maxWaterfallRows {
			label := strings.Repeat("  ", depth) + sp.Name
			if wk := sp.Worker; wk != "" {
				label += " @" + wk
			}
			if idx, ok := sp.Attrs["index"]; ok {
				label += " #" + idx
			}
			fmt.Fprintf(w, "  %9s %-44s %10s %s\n",
				sp.Start.Sub(t0).Round(time.Microsecond), clip(label, 44),
				sp.Duration.Round(time.Microsecond), bar(sp, t0, window))
		}
		rows++
		for _, c := range children[sp.SpanID] {
			draw(c, depth+1)
		}
	}
	for _, r := range roots {
		draw(r, 0)
	}
	if rows > maxWaterfallRows {
		fmt.Fprintf(w, "  … %d more spans (showing first %d)\n", rows-maxWaterfallRows, maxWaterfallRows)
	}

	// Slowest spans: where the wall-clock actually went.
	slow := make([]traceSpan, len(tr.Spans))
	copy(slow, tr.Spans)
	sort.SliceStable(slow, func(i, j int) bool { return slow[i].Duration > slow[j].Duration })
	n := len(slow)
	if n > 5 {
		n = 5
	}
	fmt.Fprintln(w, "slowest spans:")
	for _, sp := range slow[:n] {
		name := sp.Name
		if idx, ok := sp.Attrs["index"]; ok {
			name += " #" + idx
		}
		fmt.Fprintf(w, "  %10s  %-28s @%s\n", sp.Duration.Round(time.Microsecond), clip(name, 28), sp.Worker)
	}

	// Per-worker breakdown over the point-level spans — the fleet's load
	// split, and how much of each worker's share the cache absorbed.
	type load struct {
		points, cached int
		busy           time.Duration
	}
	perWorker := make(map[string]*load)
	var workers []string
	for _, sp := range tr.Spans {
		switch sp.Name {
		case "simulate", "cache_hit", "screened", "pruned":
		default:
			continue
		}
		l := perWorker[sp.Worker]
		if l == nil {
			l = &load{}
			perWorker[sp.Worker] = l
			workers = append(workers, sp.Worker)
		}
		l.points++
		if sp.Name == "cache_hit" {
			l.cached++
		}
		l.busy += sp.Duration
	}
	if len(workers) > 0 {
		sort.Strings(workers)
		fmt.Fprintln(w, "per worker:")
		for _, wk := range workers {
			l := perWorker[wk]
			fmt.Fprintf(w, "  %-28s %4d points (%d cached)  %10s busy\n",
				clip(wk, 28), l.points, l.cached, l.busy.Round(time.Microsecond))
		}
	}
}

// bar draws a span's position within the trace window on a fixed scale.
func bar(sp traceSpan, t0 time.Time, window time.Duration) string {
	const width = 30
	lead := int(float64(sp.Start.Sub(t0)) / float64(window) * width)
	span := int(float64(sp.Duration) / float64(window) * width)
	if span < 1 {
		span = 1
	}
	if lead > width-1 {
		lead = width - 1
	}
	if lead+span > width {
		span = width - lead
	}
	return strings.Repeat(" ", lead) + strings.Repeat("▇", span)
}

// clip truncates a label to n runes with an ellipsis.
func clip(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}
