// Command benchjson converts `go test -bench` output into the JSON
// baseline format tracked in BENCH_BASELINE.json / BENCH_PR.json (see
// EXPERIMENTS.md). It reads benchmark output from stdin (or a file given
// with -in) and writes a JSON object mapping benchmark name to its
// measured ns/op, B/op, allocs/op and MB/s, so successive PRs can diff
// perf trajectories mechanically.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | go run ./cmd/benchjson -out BENCH_PR.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result holds the measurements for one benchmark.
type Result struct {
	Iterations int64    `json:"iterations"`
	NsPerOp    float64  `json:"ns_per_op"`
	BytesPerOp *float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64 `json:"allocs_per_op,omitempty"`
	MBPerSec   *float64 `json:"mb_per_sec,omitempty"`
	// Extra keeps custom b.ReportMetric units (e.g. "trials/op",
	// "events/op") so domain-level speedups — not just wall-clock — are
	// part of the tracked perf trajectory.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	out := flag.String("out", "", "output JSON file (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	results, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines found in input"))
	}

	// encoding/json sorts map keys, so the output is stable as-is.
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')

	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// Parse extracts benchmark results from `go test -bench` output. A
// benchmark appearing multiple times (e.g. -count > 1) keeps the fastest
// ns/op, the conventional choice for regression tracking.
func Parse(r io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  1234  970.5 ns/op [12 B/op] [3 allocs/op] [640 MB/s] ...
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				seen = true
			case "B/op":
				res.BytesPerOp = ptr(v)
			case "allocs/op":
				res.AllocsOp = ptr(v)
			case "MB/s":
				res.MBPerSec = ptr(v)
			default:
				// Custom b.ReportMetric units: per-op ratios
				// ("trials/op") and rates ("queries/s").
				if strings.HasSuffix(fields[i+1], "/op") || strings.HasSuffix(fields[i+1], "/s") {
					if res.Extra == nil {
						res.Extra = make(map[string]float64)
					}
					res.Extra[fields[i+1]] = v
				}
			}
		}
		if !seen {
			continue
		}
		if prev, ok := results[name]; !ok || res.NsPerOp < prev.NsPerOp {
			results[name] = res
		}
	}
	return results, sc.Err()
}

func ptr(v float64) *float64 { return &v }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
