package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// TestSnapshotAgainstLiveFleet drives the dashboard's fetch+render path
// against a real coordinator+worker fleet — the same path `wttop -once`
// takes in the CI smoke test.
func TestSnapshotAgainstLiveFleet(t *testing.T) {
	wts := httptest.NewServer(http.NotFoundHandler())
	defer wts.Close()
	worker, err := service.New(service.Config{PoolSize: 2, Self: wts.URL, HistoryInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	wts.Config.Handler = worker.Handler()

	coord, err := service.New(service.Config{Coordinator: true, Peers: []string{wts.URL}, HistoryInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	// One finished job so the JOBS table has a row.
	body := strings.NewReader(`{"query": "SIMULATE availability VARY cluster.nodes IN (5,6) WITH users = 10, object_mb = 10, trials = 1, horizon_hours = 100 WHERE sla.availability >= 0.2"}`)
	resp, err := http.Post(cts.URL+"/v1/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !strings.Contains(string(stream), `"result"`) {
		t.Fatalf("query did not complete: %v\n%s", err, stream)
	}

	c := &client{base: cts.URL, hc: http.DefaultClient}
	deadline := time.Now().Add(5 * time.Second)
	var snap snapshot
	for {
		snap = c.fetch(context.Background(), time.Minute)
		if snap.err == nil && snap.fleet != nil && len(snap.queue) > 1 && len(snap.jobs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no full snapshot before deadline: err=%v fleet=%v queue=%d jobs=%d",
				snap.err, snap.fleet, len(snap.queue), len(snap.jobs))
		}
		time.Sleep(20 * time.Millisecond)
	}

	var out bytes.Buffer
	render(&out, snap)
	text := out.String()

	if !strings.Contains(text, "FLEET  1 members") || !strings.Contains(text, wts.URL) {
		t.Fatalf("fleet table missing the worker row:\n%s", text)
	}
	if !strings.Contains(text, "up") {
		t.Fatalf("worker not shown up:\n%s", text)
	}
	if !strings.Contains(text, "queue depth") || !strings.Contains(text, "points/sec") || !strings.Contains(text, "cache hit") {
		t.Fatalf("sparkline rows missing:\n%s", text)
	}
	if !strings.Contains(text, "JOBS  ") || !strings.Contains(text, "SIMULATE availability") {
		t.Fatalf("jobs table missing the submitted job:\n%s", text)
	}
	if !strings.Contains(text, "ALERTS  0 firing, 0 pending") {
		t.Fatalf("healthy fleet should report no alerts:\n%s", text)
	}
	if strings.Contains(text, "!!") {
		t.Fatalf("healthy snapshot rendered an error banner:\n%s", text)
	}
}

// TestSnapshotUnreachableServer: fetch records the failure and render
// degrades to the error banner instead of crashing — `-once` turns that
// into a non-zero exit.
func TestSnapshotUnreachableServer(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // now refuses connections
	c := &client{base: ts.URL, hc: &http.Client{Timeout: 200 * time.Millisecond}}
	snap := c.fetch(context.Background(), time.Minute)
	if snap.err == nil {
		t.Fatal("unreachable server produced no error")
	}
	var out bytes.Buffer
	render(&out, snap)
	if !strings.Contains(out.String(), "!!") || !strings.Contains(out.String(), "FLEET unavailable") {
		t.Fatalf("error snapshot should render degraded sections:\n%s", out.String())
	}
}

func TestMergeGaugeAlignsFromTail(t *testing.T) {
	at := func(i int) time.Time { return time.Unix(int64(i), 0) }
	got := mergeGauge([]histSeries{
		{Points: []histPoint{{at(1), 1}, {at(2), 2}, {at(3), 3}}},
		{Points: []histPoint{{at(2), 10}, {at(3), 20}}},
	})
	want := []float64{1, 12, 23}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestPerSecondHandlesResets(t *testing.T) {
	at := func(i int) time.Time { return time.Unix(int64(i), 0) }
	got := perSecond([]histPoint{{at(0), 10}, {at(2), 14}, {at(4), 2}})
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("rates %v, want [2 1] (reset contributes post-reset value)", got)
	}
	if perSecond([]histPoint{{at(0), 1}}) != nil {
		t.Fatal("single point has no rate")
	}
}

func TestHitRatioNoTraffic(t *testing.T) {
	pct := hitRatio([][]float64{{0, 3}}, [][]float64{{0, 1}})
	if pct[0] != -1 {
		t.Fatalf("idle step should be marked no-data, got %v", pct[0])
	}
	if pct[1] != 75 {
		t.Fatalf("hit ratio %v, want 75", pct[1])
	}
}

func TestSparkline(t *testing.T) {
	s := sparkline([]float64{0, 1, 2, 4}, 6)
	runes := []rune(s)
	if len(runes) != 6 {
		t.Fatalf("sparkline %q not padded to width", s)
	}
	if runes[0] != ' ' || runes[1] != ' ' {
		t.Fatalf("sparkline %q should left-pad short histories", s)
	}
	if runes[5] != '█' || runes[2] != '▁' {
		t.Fatalf("sparkline %q should scale 0..max", s)
	}
	// No-data steps draw blank, flat series draw the floor glyph.
	if got := sparkline([]float64{-1, 5, 5}, 3); []rune(got)[0] != ' ' {
		t.Fatalf("no-data step should be blank: %q", got)
	}
	if got := sparkline([]float64{0, 0}, 2); got != "▁▁" {
		t.Fatalf("flat zero series should draw the floor: %q", got)
	}
}
