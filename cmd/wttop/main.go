// Command wttop is a live terminal dashboard over a windtunneld
// coordinator — `top` for the wind tunnel fleet. It polls the
// observability API (/v1/fleet, /v1/alerts, /v1/jobs and the
// /v1/metrics/history ranges the telemetry history records) and redraws
// an ANSI screen each interval: fleet membership with health state,
// queue-depth / points-per-second / cache-hit-ratio sparklines, the
// most recent jobs, and any firing or pending alerts.
//
// Usage:
//
//	wttop -server http://localhost:8866
//	wttop -server http://localhost:8866 -interval 1s -window 10m
//	wttop -once          # one plain snapshot to stdout (CI smoke tests)
//
// -once renders a single frame without ANSI control sequences and exits
// non-zero if the coordinator is unreachable, so a smoke test can both
// grep the output and trust the exit code.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8866", "windtunneld coordinator base URL")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	window := flag.Duration("window", 5*time.Minute, "history window behind the sparklines")
	once := flag.Bool("once", false, "render one plain snapshot and exit (no ANSI)")
	flag.Parse()

	c := &client{
		base: strings.TrimRight(*server, "/"),
		hc:   &http.Client{Timeout: 5 * time.Second},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *once {
		snap := c.fetch(ctx, *window)
		render(os.Stdout, snap)
		if snap.err != nil {
			fmt.Fprintln(os.Stderr, "wttop:", snap.err)
			os.Exit(1)
		}
		return
	}

	// Live mode: alternate-screen + hidden cursor, restored on exit so a
	// ^C leaves the terminal usable.
	fmt.Print("\x1b[?1049h\x1b[?25l")
	defer fmt.Print("\x1b[?25h\x1b[?1049l")
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		snap := c.fetch(ctx, *window)
		var b strings.Builder
		b.WriteString("\x1b[H\x1b[2J")
		render(&b, snap)
		os.Stdout.WriteString(b.String())
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// The types below mirror the daemon's JSON, decoded with the subset of
// fields the dashboard draws.

type fleetResponse struct {
	Mode    string   `json:"mode"`
	Self    string   `json:"self"`
	Members []member `json:"members"`
}

type member struct {
	URL       string `json:"url"`
	State     string `json:"state"`
	Draining  bool   `json:"draining"`
	Failures  int    `json:"consecutive_failures"`
	LastError string `json:"last_error"`
}

type alertsResponse struct {
	Firing  int     `json:"firing"`
	Pending int     `json:"pending"`
	Alerts  []alert `json:"alerts"`
}

type alert struct {
	Rule     string    `json:"rule"`
	Severity string    `json:"severity"`
	Labels   string    `json:"labels"`
	State    string    `json:"state"`
	Value    float64   `json:"value"`
	Since    time.Time `json:"since"`
}

type job struct {
	ID        string    `json:"id"`
	Query     string    `json:"query"`
	State     string    `json:"state"`
	Created   time.Time `json:"created"`
	Done      int       `json:"done"`
	Total     int       `json:"total"`
	CacheHits int       `json:"cache_hits"`
	Degraded  bool      `json:"degraded"`
}

type histPoint struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

type histSeries struct {
	Labels string      `json:"labels"`
	Points []histPoint `json:"points"`
}

type historyResponse struct {
	Series []histSeries `json:"series"`
}

// snapshot is one fetched frame; partial failures leave sections nil
// and the first error recorded, so the dashboard degrades instead of
// blanking when one endpoint hiccups.
type snapshot struct {
	at     time.Time
	server string
	window time.Duration

	fleet   *fleetResponse
	alerts  *alertsResponse
	jobs    []job
	queue   []float64 // merged wt_pool_queue_depth over the window
	pointsS []float64 // fleet points/sec derived from wt_points_committed_total
	hitPct  []float64 // cache hit % per history step
	err     error
}

type client struct {
	base string
	hc   *http.Client
}

func (c *client) getJSON(ctx context.Context, path string, into any) error {
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func (c *client) history(ctx context.Context, name string, window time.Duration) ([]histSeries, error) {
	var hr historyResponse
	path := "/v1/metrics/history?name=" + url.QueryEscape(name) +
		"&window=" + url.QueryEscape(window.String())
	if err := c.getJSON(ctx, path, &hr); err != nil {
		return nil, err
	}
	return hr.Series, nil
}

func (c *client) fetch(ctx context.Context, window time.Duration) snapshot {
	snap := snapshot{at: time.Now(), server: c.base, window: window}
	keep := func(err error) {
		if err != nil && snap.err == nil {
			snap.err = err
		}
	}

	var fleet fleetResponse
	if err := c.getJSON(ctx, "/v1/fleet", &fleet); err != nil {
		keep(err)
	} else {
		snap.fleet = &fleet
	}
	var alerts alertsResponse
	if err := c.getJSON(ctx, "/v1/alerts", &alerts); err != nil {
		keep(err)
	} else {
		snap.alerts = &alerts
	}
	keep(c.getJSON(ctx, "/v1/jobs", &snap.jobs))

	if qs, err := c.history(ctx, "wt_pool_queue_depth", window); err != nil {
		keep(err)
	} else {
		snap.queue = mergeGauge(qs)
	}
	if ps, err := c.history(ctx, "wt_points_committed_total", window); err != nil {
		keep(err)
	} else {
		snap.pointsS = mergeRate(ps)
	}
	hits, err1 := c.history(ctx, "wt_cache_hits_total", window)
	disk, err2 := c.history(ctx, "wt_cache_disk_hits_total", window)
	miss, err3 := c.history(ctx, "wt_cache_misses_total", window)
	if err1 == nil && err2 == nil && err3 == nil {
		snap.hitPct = hitRatio(append(mergeRateSeries(hits), mergeRateSeries(disk)...), mergeRateSeries(miss))
	} else {
		keep(err1)
		keep(err2)
		keep(err3)
	}
	return snap
}

// mergeGauge sums a metric's series point-by-point, aligning from the
// newest sample backwards — instances sample on the same cadence, so
// index alignment from the tail is a faithful fleet total.
func mergeGauge(series []histSeries) []float64 {
	depth := 0
	for _, s := range series {
		if len(s.Points) > depth {
			depth = len(s.Points)
		}
	}
	out := make([]float64, depth)
	for _, s := range series {
		off := depth - len(s.Points)
		for i, p := range s.Points {
			out[off+i] += p.V
		}
	}
	return out
}

// perSecond turns one counter series into per-second rates between
// consecutive samples; a counter reset contributes the post-reset value.
func perSecond(points []histPoint) []float64 {
	if len(points) < 2 {
		return nil
	}
	out := make([]float64, 0, len(points)-1)
	for i := 1; i < len(points); i++ {
		d := points[i].V - points[i-1].V
		if d < 0 {
			d = points[i].V
		}
		dt := points[i].T.Sub(points[i-1].T).Seconds()
		if dt <= 0 {
			dt = 1
		}
		out = append(out, d/dt)
	}
	return out
}

// mergeRateSeries converts every series to per-second rates, keeping
// them separate (for ratio math); mergeRate also sums across series.
func mergeRateSeries(series []histSeries) [][]float64 {
	out := make([][]float64, 0, len(series))
	for _, s := range series {
		if r := perSecond(s.Points); r != nil {
			out = append(out, r)
		}
	}
	return out
}

func mergeRate(series []histSeries) []float64 {
	return sumAligned(mergeRateSeries(series))
}

func sumAligned(rates [][]float64) []float64 {
	depth := 0
	for _, r := range rates {
		if len(r) > depth {
			depth = len(r)
		}
	}
	out := make([]float64, depth)
	for _, r := range rates {
		off := depth - len(r)
		for i, v := range r {
			out[off+i] += v
		}
	}
	return out
}

// hitRatio computes per-step cache hit percentages from the hit-rate
// and miss-rate series; steps with no traffic carry NaN and draw blank.
func hitRatio(hitRates, missRates [][]float64) []float64 {
	hits, misses := sumAligned(hitRates), sumAligned(missRates)
	depth := len(hits)
	if len(misses) > depth {
		depth = len(misses)
	}
	out := make([]float64, depth)
	for i := range out {
		var h, m float64
		if j := i - (depth - len(hits)); j >= 0 && j < len(hits) {
			h = hits[j]
		}
		if j := i - (depth - len(misses)); j >= 0 && j < len(misses) {
			m = misses[j]
		}
		if h+m <= 0 {
			out[i] = -1 // no traffic this step
			continue
		}
		out[i] = 100 * h / (h + m)
	}
	return out
}

// sparkTicks are the eight block glyphs a sparkline draws with.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

const sparkWidth = 40

// sparkline renders vals scaled 0..max into block glyphs, newest at the
// right edge; negative values (no-data steps) draw as spaces.
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i := 0; i < width-len(vals); i++ {
		b.WriteByte(' ')
	}
	for _, v := range vals {
		switch {
		case v < 0:
			b.WriteByte(' ')
		case max <= 0:
			b.WriteRune(sparkTicks[0])
		default:
			idx := int(v / max * float64(len(sparkTicks)-1))
			b.WriteRune(sparkTicks[idx])
		}
	}
	return b.String()
}

// last returns the newest value of a merged series, skipping no-data
// steps; ok is false when the series is empty.
func last(vals []float64) (float64, bool) {
	for i := len(vals) - 1; i >= 0; i-- {
		if vals[i] >= 0 {
			return vals[i], true
		}
	}
	return 0, false
}

// maxVisibleJobs bounds the jobs table to roughly one screen.
const maxVisibleJobs = 8

func render(w io.Writer, snap snapshot) {
	fmt.Fprintf(w, "wttop — %s — %s", snap.server, snap.at.Format(time.RFC3339))
	if snap.fleet != nil {
		fmt.Fprintf(w, "  (mode: %s)", snap.fleet.Mode)
	}
	fmt.Fprintln(w)
	if snap.err != nil {
		fmt.Fprintf(w, "!! %v\n", snap.err)
	}
	fmt.Fprintln(w)

	renderFleet(w, snap.fleet)
	renderSparks(w, snap)
	renderJobs(w, snap.jobs)
	renderAlerts(w, snap.alerts)
}

func renderFleet(w io.Writer, fleet *fleetResponse) {
	if fleet == nil {
		fmt.Fprintln(w, "FLEET unavailable")
		fmt.Fprintln(w)
		return
	}
	members := fleet.Members
	if len(members) == 0 && fleet.Self != "" {
		// A single-node daemon monitors no one; show it as itself.
		members = []member{{URL: fleet.Self, State: "up"}}
	}
	fmt.Fprintf(w, "FLEET  %d members\n", len(members))
	fmt.Fprintf(w, "  %-36s %-8s %s\n", "MEMBER", "STATE", "NOTE")
	sort.Slice(members, func(i, j int) bool { return members[i].URL < members[j].URL })
	for _, m := range members {
		note := ""
		switch {
		case m.Draining:
			note = "draining"
		case m.LastError != "":
			note = fmt.Sprintf("%d failures: %s", m.Failures, m.LastError)
		}
		fmt.Fprintf(w, "  %-36s %-8s %s\n", clip(m.URL, 36), m.State, clip(note, 48))
	}
	fmt.Fprintln(w)
}

func renderSparks(w io.Writer, snap snapshot) {
	row := func(name string, vals []float64, unit string) {
		cur := "–"
		if v, ok := last(vals); ok {
			cur = fmt.Sprintf("%.1f%s", v, unit)
		}
		fmt.Fprintf(w, "  %-14s %s %s\n", name, sparkline(vals, sparkWidth), cur)
	}
	fmt.Fprintf(w, "METRICS  (last %s)\n", snap.window)
	row("queue depth", snap.queue, "")
	row("points/sec", snap.pointsS, "")
	row("cache hit", snap.hitPct, "%")
	fmt.Fprintln(w)
}

func renderJobs(w io.Writer, jobs []job) {
	active := 0
	for _, j := range jobs {
		if j.State == "running" || j.State == "queued" {
			active++
		}
	}
	fmt.Fprintf(w, "JOBS  %d active / %d known\n", active, len(jobs))
	if len(jobs) == 0 {
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintf(w, "  %-10s %-9s %-14s %-6s %s\n", "ID", "STATE", "PROGRESS", "CACHED", "QUERY")
	shown := jobs
	if len(shown) > maxVisibleJobs {
		shown = shown[:maxVisibleJobs]
	}
	for _, j := range shown {
		progress := fmt.Sprintf("%d/%d", j.Done, j.Total)
		if j.Total > 0 {
			progress += fmt.Sprintf(" (%d%%)", 100*j.Done/j.Total)
		}
		state := j.State
		if j.Degraded {
			state += "!"
		}
		fmt.Fprintf(w, "  %-10s %-9s %-14s %-6d %s\n",
			clip(j.ID, 10), state, progress, j.CacheHits, clip(oneLine(j.Query), 60))
	}
	if len(jobs) > maxVisibleJobs {
		fmt.Fprintf(w, "  … %d more\n", len(jobs)-maxVisibleJobs)
	}
	fmt.Fprintln(w)
}

func renderAlerts(w io.Writer, alerts *alertsResponse) {
	if alerts == nil {
		fmt.Fprintln(w, "ALERTS unavailable")
		return
	}
	fmt.Fprintf(w, "ALERTS  %d firing, %d pending\n", alerts.Firing, alerts.Pending)
	for _, a := range alerts.Alerts {
		if a.State == "resolved" {
			continue
		}
		age := time.Since(a.Since).Round(time.Second)
		fmt.Fprintf(w, "  %-8s %-24s %-8s %s  value=%.3g  for %s\n",
			strings.ToUpper(a.State), a.Rule, a.Severity, a.Labels, a.Value, age)
	}
}

// oneLine collapses a query's internal whitespace for the jobs table.
func oneLine(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// clip truncates a label to n runes with an ellipsis.
func clip(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}
