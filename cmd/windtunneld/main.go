// Command windtunneld is the wind tunnel daemon: a long-running HTTP
// server that executes WTQL queries as concurrent jobs on a shared
// bounded worker pool, streams per-design-point progress and results as
// NDJSON, and reuses completed trial statistics across queries and
// restarts via a content-addressed trial cache.
//
// Usage:
//
//	windtunneld -addr :8866 -pool 8 -cache-dir /var/cache/windtunnel
//
// API:
//
//	POST   /v1/query      {"query": "SIMULATE ...", "trials": 5} -> NDJSON stream
//	GET    /v1/jobs       job listing
//	GET    /v1/jobs/{id}  one job
//	GET    /v1/jobs/{id}/stream?from=N  replay a job's stream from point N, then tail live
//	DELETE /v1/jobs/{id}  cancel a running job
//	GET    /v1/cache      trial-cache and pool statistics
//	GET    /v1/fleet      fleet membership and per-member health
//	GET    /v1/healthz    liveness ("ok", or "draining" during shutdown) + build identity
//	GET    /v1/stats      operational snapshot (build, runtime, pool, cache, jobs)
//	GET    /metrics       Prometheus text exposition (disable with -telemetry=false)
//	GET    /v1/jobs/{id}/trace  the job's distributed trace tree (fleet-merged on a coordinator)
//	GET    /v1/metrics/fleet    merged fleet exposition from telemetry history (per-instance labels)
//	GET    /v1/metrics/history  JSON range query over retained samples (?name=&window=)
//	GET    /v1/alerts     alert rule instances (firing / pending / resolved)
//
// Observability: every serving path is instrumented into a zero-
// dependency metrics registry scraped at /metrics, and every job records
// a distributed trace (plan → shard → simulate/cache-hit → merge →
// journal) that a coordinator propagates to workers via the X-WT-Trace
// header. Every -history-interval (default 2s) the registry is sampled
// into an in-process time-series history (bounded rings, -history-depth
// samples per series); a coordinator additionally scrapes each worker's
// /metrics into the same history labelled per instance, so
// /v1/metrics/fleet serves one merged fleet view and /v1/metrics/history
// serves range queries. An alert engine evaluates declarative SLO rules
// (worker down, sustained queue depth, cache hit ratio collapse, slow
// journal fsyncs, degraded jobs, failover bursts — extend or override
// with -alerts rules.json) over that history on the same interval;
// instances are served at /v1/alerts, transitions are logged to stderr,
// and /v1/healthz carries the firing count. -telemetry=false turns all
// of it off; tables and NDJSON streams are byte-identical either way.
// -pprof mounts net/http/pprof (plus /metrics and /v1/stats) on a
// separate listener kept off the serving port. cmd/wttop renders a live
// terminal dashboard from these endpoints.
//
// Durability: by default every client-facing query is write-ahead
// journaled under -journal (one fsync'd record per committed design
// point, carrying its cache key) and runs detached from the client
// connection. A crashed daemon (kill -9, OOM, power loss) replays the
// journal on restart, resurrects incomplete jobs under their original
// ids, and resumes only the undelivered points; clients reconnect with
// GET /v1/jobs/{id}/stream?from=N and see the committed prefix replayed
// byte-identically. -journal "" disables all of this: queries stream
// inline and die with their client connection.
//
// Fleet mode: a set of workers plus one coordinator form a sharded wind
// tunnel. Every member gets the same -peers list (the worker URLs);
// each worker additionally names itself with -self, enabling cache
// peering, and the coordinator runs with -coordinator, sharding each
// sweep's design points across the workers by consistent-hashing their
// cache keys and merging the streams back in point order:
//
//	windtunneld -addr :8867 -cache-dir /var/wt/w1 -peers http://h1:8867,http://h2:8867 -self http://h1:8867
//	windtunneld -addr :8867 -cache-dir /var/wt/w2 -peers http://h1:8867,http://h2:8867 -self http://h2:8867
//	windtunneld -addr :8866 -coordinator -peers http://h1:8867,http://h2:8867
//
// The coordinator tolerates worker failures: a torn or stalled stream
// (see -stream-idle) re-plans only that shard's undelivered points onto
// the surviving workers with exponential backoff, bounded by
// -shard-retries; when no worker can take a shard the coordinator
// executes the remainder itself and flags the job "degraded". A health
// monitor probes every member's /v1/healthz and routes shard planning
// and cache peering around suspect or down members.
//
// -chaos enables deterministic fault injection (dropped streams,
// delays, 500s, connection resets) for exercising those paths.
//
// On SIGINT/SIGTERM the daemon drains gracefully: new queries are
// refused with 503, in-flight jobs stream to completion within the
// -drain window, then remaining jobs are cancelled and the result
// archive (when -store is set) is saved.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/results"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8866", "listen address")
	pool := flag.Int("pool", 0, "shared simulation worker slots (0 = GOMAXPROCS)")
	trials := flag.Int("trials", 5, "default trials per configuration (WITH trials overrides)")
	cacheEntries := flag.Int("cache-entries", service.DefaultCacheEntries, "trial cache memory-tier capacity (results)")
	cacheDir := flag.String("cache-dir", "", "trial cache disk tier directory (empty = memory only)")
	storePath := flag.String("store", "", "JSON result archive shared by all jobs (§4.4)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown window for in-flight jobs")
	peers := flag.String("peers", "", "comma-separated fleet worker URLs (same list on every member)")
	self := flag.String("self", "", "this worker's own URL within -peers (enables cache peering)")
	coordinator := flag.Bool("coordinator", false, "coordinator mode: shard queries across -peers workers")
	streamIdle := flag.Duration("stream-idle", 0, "coordinator per-stream idle deadline before failover (0 = 2m)")
	shardRetries := flag.Int("shard-retries", 0, "max workers a shard fails over across before coordinator-local execution (0 = 3)")
	chaos := flag.String("chaos", "", "fault injection spec, e.g. seed=7,err=0.05,delay=0.1,delay-max=200ms,drop=0.05,reset=0.05,cut=3")
	journal := flag.String("journal", "auto", `job journal directory for crash recovery ("auto" = wtjournal-<addr>; empty disables journaling)`)
	storeInterval := flag.Duration("store-interval", time.Minute, "checkpoint the -store archive this often (0 = only on shutdown)")
	telemetry := flag.Bool("telemetry", true, "metrics registry + /metrics exposition + distributed tracing")
	pprofAddr := flag.String("pprof", "", "mount net/http/pprof (and /metrics, /v1/stats) on this separate address (empty = off)")
	historyInterval := flag.Duration("history-interval", 0, "telemetry history sampling / fleet scrape / alert evaluation period (0 = 2s)")
	historyDepth := flag.Int("history-depth", 0, "retained samples per history series (0 = 360: 12m at the default interval)")
	alertsFile := flag.String("alerts", "", "JSON alert rules file merged over the built-in defaults (empty = defaults only)")
	flag.Parse()

	journalDir := *journal
	if journalDir == "auto" {
		// Derive a per-daemon directory from the listen address so
		// multiple daemons sharing a working directory (CI smoke jobs,
		// local fleets) never replay each other's jobs.
		journalDir = "wtjournal-" + strings.NewReplacer(":", "_", "/", "_").Replace(strings.TrimPrefix(*addr, ":"))
	}

	cfg := service.Config{
		Trials:            *trials,
		PoolSize:          *pool,
		CacheEntries:      *cacheEntries,
		CacheDir:          *cacheDir,
		Peers:             splitPeers(*peers),
		Self:              *self,
		Coordinator:       *coordinator,
		StreamIdleTimeout: *streamIdle,
		MaxShardRetries:   *shardRetries,
		JournalDir:        journalDir,
		NoTelemetry:       !*telemetry,
		HistoryInterval:   *historyInterval,
		HistoryDepth:      *historyDepth,
	}
	if *alertsFile != "" {
		rules, err := service.LoadAlertRules(*alertsFile)
		if err != nil {
			fatal(err)
		}
		cfg.AlertRules = rules
	}
	if *chaos != "" {
		fcfg, err := service.ParseFaultConfig(*chaos)
		if err != nil {
			fatal(err)
		}
		cfg.Chaos = service.NewFaultInjector(fcfg)
		log.Printf("windtunneld running with CHAOS INJECTION enabled: %s", *chaos)
	}
	if *storePath != "" {
		store, err := results.Load(*storePath)
		if errors.Is(err, fs.ErrNotExist) {
			store = results.NewStore()
		} else if err != nil {
			fatal(err)
		}
		cfg.Store = store
	}
	svc, err := service.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer svc.Close()

	// Replay the journal before serving traffic: incomplete jobs from a
	// crashed run resurrect under their original ids and resume only
	// their undelivered points; their streams are resumable the moment
	// the listener is up.
	if journalDir != "" {
		resumed, warns, err := svc.Recover()
		if err != nil {
			fatal(err)
		}
		for _, w := range warns {
			log.Printf("windtunneld: %s", w)
		}
		if resumed > 0 {
			log.Printf("windtunneld: resumed %d interrupted job(s) from journal %s", resumed, journalDir)
		}
	}

	// Periodic archive checkpoint: a crash loses at most one interval of
	// archived runs instead of everything since startup (Save is atomic
	// temp+fsync+rename). Skipped when the archive hasn't grown.
	stopCheckpoint := make(chan struct{})
	checkpointDone := make(chan struct{})
	if *storePath != "" && cfg.Store != nil && *storeInterval > 0 {
		go func() {
			defer close(checkpointDone)
			tick := time.NewTicker(*storeInterval)
			defer tick.Stop()
			last := cfg.Store.Len()
			for {
				select {
				case <-stopCheckpoint:
					return
				case <-tick.C:
					if n := cfg.Store.Len(); n != last {
						if err := cfg.Store.Save(*storePath); err != nil {
							log.Printf("windtunneld: archive checkpoint: %v", err)
							continue
						}
						last = n
					}
				}
			}
		}()
	} else {
		close(checkpointDone)
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("windtunneld diagnostics (pprof, metrics, stats) on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, svc.DebugHandler()); err != nil &&
				!errors.Is(err, http.ErrServerClosed) {
				log.Printf("windtunneld: diagnostics listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	switch {
	case *coordinator:
		log.Printf("windtunneld coordinating %d workers on %s: %s",
			len(cfg.Peers), *addr, strings.Join(cfg.Peers, ", "))
	case len(cfg.Peers) > 0:
		log.Printf("windtunneld listening on %s (pool=%d, cache=%d entries, disk=%q, peering as %s)",
			*addr, svc.Pool().Cap(), *cacheEntries, *cacheDir, *self)
	default:
		log.Printf("windtunneld listening on %s (pool=%d, cache=%d entries, disk=%q)",
			*addr, svc.Pool().Cap(), *cacheEntries, *cacheDir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	log.Printf("windtunneld draining (up to %s)...", *drain)
	svc.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// Drain window expired: cancel whatever is still running so the
		// streams terminate, then force-close.
		log.Printf("drain window expired, cancelling remaining jobs: %v", err)
		svc.CancelAll()
		httpSrv.Close()
	}
	// Durable jobs run detached from their client connections, so
	// Shutdown returning does not mean the work is done — wait for the
	// jobs themselves (their journals record completion), then cancel
	// stragglers.
	if !svc.WaitJobs(shutdownCtx) {
		log.Printf("drain window expired with detached jobs still running, cancelling")
		svc.CancelAll()
		waitCtx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
		svc.WaitJobs(waitCtx)
		wcancel()
	}
	close(stopCheckpoint)
	<-checkpointDone
	if *storePath != "" && cfg.Store != nil {
		if err := cfg.Store.Save(*storePath); err != nil {
			fatal(err)
		}
		log.Printf("archived %d runs in %s", cfg.Store.Len(), *storePath)
	}
	st := svc.Cache().Stats()
	log.Printf("windtunneld stopped (cache: %d entries, %.1f%% hit rate, %d evictions)",
		st.Entries, 100*st.HitRate(), st.Evictions)
}

// splitPeers parses the -peers list, dropping empty segments so a
// trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "windtunneld:", err)
	os.Exit(1)
}
