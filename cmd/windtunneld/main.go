// Command windtunneld is the wind tunnel daemon: a long-running HTTP
// server that executes WTQL queries as concurrent jobs on a shared
// bounded worker pool, streams per-design-point progress and results as
// NDJSON, and reuses completed trial statistics across queries and
// restarts via a content-addressed trial cache.
//
// Usage:
//
//	windtunneld -addr :8866 -pool 8 -cache-dir /var/cache/windtunnel
//
// API:
//
//	POST   /v1/query      {"query": "SIMULATE ...", "trials": 5} -> NDJSON stream
//	GET    /v1/jobs       job listing
//	GET    /v1/jobs/{id}  one job
//	DELETE /v1/jobs/{id}  cancel a running job
//	GET    /v1/cache      trial-cache and pool statistics
//	GET    /v1/healthz    liveness
//
// On SIGINT/SIGTERM the daemon drains gracefully: new queries are
// refused with 503, in-flight jobs stream to completion within the
// -drain window, then remaining jobs are cancelled and the result
// archive (when -store is set) is saved.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/results"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8866", "listen address")
	pool := flag.Int("pool", 0, "shared simulation worker slots (0 = GOMAXPROCS)")
	trials := flag.Int("trials", 5, "default trials per configuration (WITH trials overrides)")
	cacheEntries := flag.Int("cache-entries", service.DefaultCacheEntries, "trial cache memory-tier capacity (results)")
	cacheDir := flag.String("cache-dir", "", "trial cache disk tier directory (empty = memory only)")
	storePath := flag.String("store", "", "JSON result archive shared by all jobs (§4.4)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown window for in-flight jobs")
	flag.Parse()

	cfg := service.Config{
		Trials:       *trials,
		PoolSize:     *pool,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
	}
	if *storePath != "" {
		store, err := results.Load(*storePath)
		if errors.Is(err, fs.ErrNotExist) {
			store = results.NewStore()
		} else if err != nil {
			fatal(err)
		}
		cfg.Store = store
	}
	svc, err := service.New(cfg)
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("windtunneld listening on %s (pool=%d, cache=%d entries, disk=%q)",
		*addr, svc.Pool().Cap(), *cacheEntries, *cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	log.Printf("windtunneld draining (up to %s)...", *drain)
	svc.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// Drain window expired: cancel whatever is still running so the
		// streams terminate, then force-close.
		log.Printf("drain window expired, cancelling remaining jobs: %v", err)
		svc.CancelAll()
		httpSrv.Close()
	}
	if *storePath != "" && cfg.Store != nil {
		if err := cfg.Store.Save(*storePath); err != nil {
			fatal(err)
		}
		log.Printf("archived %d runs in %s", cfg.Store.Len(), *storePath)
	}
	st := svc.Cache().Stats()
	log.Printf("windtunneld stopped (cache: %d entries, %.1f%% hit rate, %d evictions)",
		st.Entries, 100*st.HitRate(), st.Evictions)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "windtunneld:", err)
	os.Exit(1)
}
