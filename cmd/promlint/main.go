// Command promlint validates a Prometheus text exposition against the
// format invariants obs.Lint checks (HELP/TYPE coverage, duplicate
// series, label escaping, cumulative histogram buckets, parseable
// values). It reads the exposition from a URL argument or stdin and
// exits non-zero when the payload has problems — CI points it at every
// fleet member's live /metrics scrape.
//
// Usage:
//
//	promlint http://localhost:8866/metrics
//	curl -s http://localhost:8866/metrics | promlint
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/obs"
)

func main() {
	var data []byte
	var err error
	switch {
	case len(os.Args) > 2:
		fmt.Fprintln(os.Stderr, "usage: promlint [url] (or exposition on stdin)")
		os.Exit(2)
	case len(os.Args) == 2:
		data, err = fetch(os.Args[1])
	default:
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(2)
	}
	problems := obs.Lint(data)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "promlint:", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
