// Command promlint validates a Prometheus text exposition against the
// format invariants obs.Lint checks (HELP/TYPE coverage, duplicate
// series, label escaping, cumulative histogram buckets, parseable
// values). It reads the exposition from a URL argument or stdin and
// exits non-zero when the payload has problems — CI points it at every
// fleet member's live /metrics scrape and at the coordinator's
// federated /v1/metrics/fleet view.
//
// Usage:
//
//	promlint http://localhost:8866/metrics
//	curl -s http://localhost:8866/metrics | promlint
//	promlint -watch 2s http://localhost:8866/v1/metrics/fleet
//	promlint -watch 500ms -watch-rounds 10 http://localhost:8866/metrics
//
// -watch re-fetches and re-lints the URL on the given interval, exiting
// 1 at the first failing scrape — a fleet whose exposition is only
// sometimes valid is broken, and a single-shot lint can miss the racing
// write that breaks it. -watch-rounds bounds the loop for CI; 0 watches
// forever.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	watch := flag.Duration("watch", 0, "re-lint the URL on this interval until a scrape fails (0 = lint once)")
	rounds := flag.Int("watch-rounds", 0, "with -watch: stop clean after this many passing rounds (0 = forever)")
	flag.Parse()

	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: promlint [-watch interval [-watch-rounds n]] [url] (or exposition on stdin)")
		os.Exit(2)
	}
	url := flag.Arg(0)
	if *watch > 0 && url == "" {
		fmt.Fprintln(os.Stderr, "promlint: -watch needs a URL (stdin has no second scrape)")
		os.Exit(2)
	}

	if *watch <= 0 {
		os.Exit(lintOnce(url))
	}
	for n := 1; ; n++ {
		if code := lintOnce(url); code != 0 {
			fmt.Fprintf(os.Stderr, "promlint: %s failed on watch round %d\n", url, n)
			os.Exit(code)
		}
		if *rounds > 0 && n >= *rounds {
			fmt.Fprintf(os.Stderr, "promlint: %s clean for %d rounds\n", url, n)
			return
		}
		time.Sleep(*watch)
	}
}

// lintOnce fetches (or reads stdin when url is empty) and lints one
// exposition, reporting problems to stderr; the return is the exit code.
func lintOnce(url string) int {
	var data []byte
	var err error
	if url != "" {
		data, err = fetch(url)
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		return 2
	}
	problems := obs.Lint(data)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "promlint:", p)
	}
	if len(problems) > 0 {
		return 1
	}
	return 0
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
