// Command figures regenerates every table and figure of the reproduction:
// the paper's Figure 1 plus the experiments E1–E9 derived from its in-text
// claims (see DESIGN.md §5 and EXPERIMENTS.md).
//
// Usage:
//
//	figures -exp f1          # one experiment
//	figures -exp all         # everything
//	figures -exp f1 -trials 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	windtunnel "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/design"
	"repro/internal/dist"
	"repro/internal/hardware"
	"repro/internal/repair"
	"repro/internal/sim"
	"repro/internal/sla"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/validate"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: f1,e1,e2,e3,e4,e5,e6,e7,e8,e9,val,all")
	trials := flag.Int("trials", 0, "override Monte-Carlo trials (0 = experiment default)")
	seed := flag.Uint64("seed", 42, "base random seed")
	flag.Parse()

	runners := map[string]func(int, uint64) error{
		"f1":  figure1,
		"e1":  e1RepairTradeoff,
		"e2":  e2AnalyticError,
		"e3":  e3Interference,
		"e4":  e4Provisioning,
		"e5":  e5Pruning,
		"e6":  e6ParallelSweep,
		"e7":  e7Limpware,
		"e8":  e8ErasureVsReplication,
		"e9":  e9TraceFitting,
		"val": validation,
	}
	order := []string{"f1", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "val"}

	run := func(id string) {
		fn, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q\n", id)
			os.Exit(1)
		}
		if err := fn(*trials, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, id := range order {
			run(id)
		}
		return
	}
	run(*exp)
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

// figure1 regenerates the paper's Figure 1: P(>=1 of 10,000 users
// unavailable) vs failed nodes, for all 8 configurations, Monte Carlo
// alongside the exact combinatorics.
func figure1(trialOverride int, seed uint64) error {
	header("Figure 1: probability of data unavailability")
	trials := 1000
	if trialOverride > 0 {
		trials = trialOverride
	}
	type config struct {
		placement string
		n, N      int
	}
	configs := []config{
		{"random", 3, 10}, {"random", 3, 30},
		{"random", 5, 10}, {"random", 5, 30},
		{"roundrobin", 3, 10}, {"roundrobin", 3, 30},
		{"roundrobin", 5, 10}, {"roundrobin", 5, 30},
	}
	fmt.Printf("%d users, %d trials per point; sim = Monte-Carlo wind tunnel, exact = combinatorics\n",
		10000, trials)
	for _, c := range configs {
		label := "R"
		if c.placement == "roundrobin" {
			label = "RR"
		}
		fmt.Printf("\n%s-%d-%d (placement=%s, replicas=%d, nodes=%d)\n",
			label, c.n, c.N, c.placement, c.n, c.N)
		fmt.Printf("%8s  %10s  %10s\n", "failures", "sim", "exact")
		curve, err := windtunnel.Figure1Curve(windtunnel.Figure1Config{
			N: c.N, Replicas: c.n, Users: 10000,
			Placement: c.placement, Trials: trials, Seed: seed,
		})
		if err != nil {
			return err
		}
		for _, pt := range curve {
			// Print the informative region only: skip the long saturated
			// tail at exactly 1 (the figure's y range).
			if pt.Config.Failures > 1 && pt.Exact == 1 && pt.Probability == 1 &&
				pt.Config.Failures > c.n+4 {
				continue
			}
			fmt.Printf("%8d  %10.4f  %10.4f\n", pt.Config.Failures, pt.Probability, pt.Exact)
		}
	}
	return nil
}

// scenarioBase is the shared E1/E5/E8 cluster (flat, 10 nodes unless
// overridden).
func scenarioBase() windtunnel.Scenario {
	sc := windtunnel.DefaultScenario()
	sc.Cluster.Racks = 2
	sc.Cluster.NodesPerRack = 10
	sc.Cluster.NodeTTF = dist.Must(dist.NewWeibull(0.7, 3000))
	sc.Cluster.NodeRepair = dist.Must(dist.LogNormalFromMoments(12, 1.2))
	sc.Users = 2000
	sc.ObjectSizeMB = 256
	sc.HorizonHours = hardware.HoursPerYear
	sc.Repair.Detection = dist.Must(dist.NewDeterministic(1))
	return sc
}

// e1RepairTradeoff is the §1 claim: can n-1 replicas with a faster
// network / parallel repair match n replicas with slow repair?
func e1RepairTradeoff(trialOverride int, seed uint64) error {
	header("E1 (§1): replication factor vs repair speed")
	trials := 8
	if trialOverride > 0 {
		trials = trialOverride
	}
	type cfg struct {
		label    string
		replicas int
		nic      string
		mode     repair.Mode
		conc     int
	}
	cases := []cfg{
		{"n=3, 1GbE, serial repair", 3, "nic-1g", repair.Serial, 1},
		{"n=3, 10GbE, parallel repair", 3, "nic-10g", repair.Parallel, 16},
		{"n=2, 1GbE, serial repair", 2, "nic-1g", repair.Serial, 1},
		{"n=2, 10GbE, parallel repair", 2, "nic-10g", repair.Parallel, 16},
	}
	fmt.Printf("%-30s %14s %14s %14s %10s %10s\n",
		"configuration", "zero-copy frac", "unavail frac", "repair max h", "storage x", "capex $")
	for _, c := range cases {
		sc := scenarioBase()
		sc.Seed = seed
		// Fast detection and large objects: the window of vulnerability is
		// dominated by transfer time, the quantity §1's argument varies.
		// An aggressive failure rate (mean TTF ~600 h) makes the rare
		// double-failure events resolvable at moderate trial counts.
		sc.Cluster.NodeTTF = dist.Must(dist.NewWeibull(0.7, 475))
		sc.Repair.Detection = dist.Must(dist.NewDeterministic(0.1))
		sc.ObjectSizeMB = 1024
		sc.Scheme = storage.ReplicationScheme(c.replicas)
		sc.Cluster.NICSpec = c.nic
		sc.Repair.Mode = c.mode
		sc.Repair.MaxConcurrent = c.conc
		res, err := windtunnel.Runner{Trials: trials}.Run(sc)
		if err != nil {
			return err
		}
		breakdown, err := cost.Estimate(hardware.DefaultCatalog(), sc.Cluster,
			cost.DefaultPriceBook(), sc.HorizonHours)
		if err != nil {
			return err
		}
		fmt.Printf("%-30s %14.4g %14.6g %14.4g %10.1f %10.0f\n",
			c.label, res.Metrics["zero_copy_fraction"], res.Metrics["unavail_fraction"],
			res.Metrics["repair_makespan"], sc.Scheme.Overhead(), breakdown.CapexUSD)
	}
	fmt.Println("\nShape check (§1): 'unavailable' here is zero up-to-date copies. Faster")
	fmt.Println("network + parallel repair shrinks the repair makespan ~10x, pulling n=2's")
	fmt.Println("zero-copy exposure toward n=3's at 2/3 the storage cost.")
	return nil
}

// e2AnalyticError is the §2.2 claim: exponential-assumption models
// mispredict when reality is Weibull/LogNormal.
func e2AnalyticError(trialOverride int, seed uint64) error {
	header("E2 (§2.2): exponential-assumption analytic error")
	requests := 300000
	if trialOverride > 0 {
		requests = trialOverride
	}
	fmt.Printf("G/G/1 mean wait (simulated) vs M/M/1 formula, rho=0.8\n")
	fmt.Printf("%-34s %12s %12s %10s\n", "arrival/service distributions", "sim Wq", "M/M/1 Wq", "error")
	type cfg struct {
		label     string
		shape, cv float64
	}
	for _, c := range []cfg{
		{"exponential / exponential", 1.0, 1.0},
		{"Weibull(0.8) / LogNormal cv=1.2", 0.8, 1.2},
		{"Weibull(0.6) / LogNormal cv=1.5", 0.6, 1.5},
		{"Weibull(0.5) / LogNormal cv=2.0", 0.5, 2.0},
	} {
		simWq, mm1Wq, err := validate.ExponentialAssumptionError(c.shape, c.cv, 0.8, 1, requests, seed)
		if err != nil {
			return err
		}
		errPct := (mm1Wq - simWq) / simWq * 100
		fmt.Printf("%-34s %12.4f %12.4f %9.1f%%\n", c.label, simWq, mm1Wq, errPct)
	}
	fmt.Println("\nShape check: the M/M/1 prediction degrades monotonically as the")
	fmt.Println("distributions depart from exponential — §2.2's argument for simulation.")
	return nil
}

// perfNodes builds a small workload cluster of node models.
func perfNodes(s *sim.Simulator, n int, spec workload.NodeSpec) ([]*workload.NodeModel, error) {
	nodes := make([]*workload.NodeModel, n)
	for i := range nodes {
		nm, err := workload.NewNodeModel(s, fmt.Sprintf("node-%d", i), spec)
		if err != nil {
			return nil, err
		}
		nodes[i] = nm
	}
	return nodes, nil
}

// e3Interference is the §3 performance-SLA use case: co-location and
// cluster events (repair storms) shift tenant latency percentiles.
func e3Interference(trialOverride int, seed uint64) error {
	header("E3 (§3): workload interference and cluster events")
	requests := int64(40000)
	if trialOverride > 0 {
		requests = int64(trialOverride)
	}
	run := func(withB, withStorm bool) (*workload.Workload, error) {
		s := sim.New(seed)
		nodes, err := perfNodes(s, 4, workload.NodeSpec{Cores: 8, DiskIOPS: 210, NICMBps: 1250})
		if err != nil {
			return nil, err
		}
		profileA := workload.Profile{
			Name: "oltp",
			CPU:  dist.Must(dist.ExpMean(0.002)),
			Disk: dist.Must(dist.ExpMean(1.2)),
			Net:  dist.Must(dist.ExpMean(0.05)),
		}
		a, err := workload.NewWorkload(s, "A", profileA, nodes)
		if err != nil {
			return nil, err
		}
		if err := a.StartOpen(dist.Must(dist.ExpMean(0.01)), requests); err != nil {
			return nil, err
		}
		if withB {
			profileB := workload.Profile{
				Name: "analytics",
				CPU:  dist.Must(dist.ExpMean(0.02)),
				Disk: dist.Must(dist.ExpMean(4)),
			}
			b, err := workload.NewWorkload(s, "B", profileB, nodes)
			if err != nil {
				return nil, err
			}
			if err := b.StartOpen(dist.Must(dist.ExpMean(0.08)), requests/4); err != nil {
				return nil, err
			}
		}
		if withStorm {
			for _, n := range nodes {
				if _, err := workload.BackgroundLoad(s, n, 0.25,
					workload.Demand{DiskOps: 12, NetMB: 24}); err != nil {
					return nil, err
				}
			}
		}
		s.RunUntil(float64(requests) * 0.01 * 1.2)
		return a, nil
	}
	fmt.Printf("%-34s %10s %10s %10s\n", "tenant A sees", "p50 (s)", "p95 (s)", "p99 (s)")
	for _, c := range []struct {
		label        string
		withB, storm bool
	}{
		{"A alone", false, false},
		{"A + co-located tenant B", true, false},
		{"A + B + repair storm", true, true},
	} {
		w, err := run(c.withB, c.storm)
		if err != nil {
			return err
		}
		lat := w.Latencies()
		fmt.Printf("%-34s %10.4f %10.4f %10.4f\n", c.label,
			lat.Quantile(0.5), lat.Quantile(0.95), lat.Quantile(0.99))
	}
	fmt.Println("\nShape check: each added cluster event shifts the tail upward; the")
	fmt.Println("repair storm hits p99 hardest — the effect §3 says prior predictors miss.")
	return nil
}

// e4Provisioning is the §3 hardware-provisioning question: cheapest
// (disk, memory) configuration meeting a p95 latency SLA.
func e4Provisioning(trialOverride int, seed uint64) error {
	header("E4 (§3): hardware provisioning sweep")
	requests := int64(30000)
	if trialOverride > 0 {
		requests = int64(trialOverride)
	}
	cat := hardware.DefaultCatalog()
	// Larger memory caches more of the working set: cache hit ratio =
	// min(0.95, memGB/datasetGB); hits skip the disk stage.
	const datasetGB = 256.0
	const p95SLA = 0.025 // 25 ms
	type row struct {
		disk, mem string
		p95       float64
		capex     float64
		met       bool
	}
	var rows []row
	for _, diskName := range []string{"hdd-7200", "ssd-sata"} {
		for _, memName := range []string{"mem-16g", "mem-64g", "mem-128g"} {
			diskSpec, err := cat.Get(diskName)
			if err != nil {
				return err
			}
			memSpec, err := cat.Get(memName)
			if err != nil {
				return err
			}
			hit := memSpec.CapacityGB / datasetGB
			if hit > 0.95 {
				hit = 0.95
			}
			s := sim.New(seed)
			nodes, err := perfNodes(s, 4, workload.NodeSpec{
				Cores: 8, DiskIOPS: diskSpec.IOPS, NICMBps: 1250,
			})
			if err != nil {
				return err
			}
			profile := workload.Profile{
				Name: "kv",
				CPU:  dist.Must(dist.ExpMean(0.001)),
				Disk: dist.Must(dist.ExpMean(1.0 * (1 - hit))),
			}
			w, err := workload.NewWorkload(s, "kv", profile, nodes)
			if err != nil {
				return err
			}
			if err := w.StartOpen(dist.Must(dist.ExpMean(0.005)), requests); err != nil {
				return err
			}
			s.RunUntil(float64(requests) * 0.005 * 1.2)
			p95 := w.Latencies().Quantile(0.95)

			ccfg := cluster.Config{
				Racks: 1, NodesPerRack: 4,
				DiskSpec: diskName, DisksPerNode: 4,
				NICSpec: "nic-10g", CPUSpec: "cpu-8c", MemSpec: memName,
				SwitchSpec: "switch-48p-10g",
			}
			breakdown, err := cost.Estimate(cat, ccfg, cost.DefaultPriceBook(), hardware.HoursPerYear)
			if err != nil {
				return err
			}
			rows = append(rows, row{diskName, memName, p95, breakdown.CapexUSD, p95 <= p95SLA})
		}
	}
	fmt.Printf("p95 latency SLA: <= %.0f ms; dataset %v GB\n\n", p95SLA*1000, datasetGB)
	fmt.Printf("%-10s %-10s %12s %10s %6s\n", "disk", "memory", "p95 (s)", "capex $", "SLA")
	bestIdx, bestCost := -1, 0.0
	for i, r := range rows {
		mark := "miss"
		if r.met {
			mark = "MET"
			if bestIdx < 0 || r.capex < bestCost {
				bestIdx, bestCost = i, r.capex
			}
		}
		fmt.Printf("%-10s %-10s %12.4f %10.0f %6s\n", r.disk, r.mem, r.p95, r.capex, mark)
	}
	if bestIdx >= 0 {
		fmt.Printf("\ncheapest configuration meeting the SLA: %s + %s ($%.0f capex)\n",
			rows[bestIdx].disk, rows[bestIdx].mem, rows[bestIdx].capex)
	} else {
		fmt.Println("\nno configuration met the SLA")
	}
	return nil
}

// e5Pruning measures §4.2 dominance pruning and early abort.
func e5Pruning(trialOverride int, seed uint64) error {
	header("E5 (§4.2): dominance pruning and early abort")
	trials := 2
	if trialOverride > 0 {
		trials = trialOverride
	}
	space, err := design.NewSpace(
		design.Dimension{Name: "nic", Values: []design.Value{"nic-1g", "nic-10g", "nic-40g"}, Monotone: true},
		design.Dimension{Name: "replicas", Values: []design.Value{2, 3, 5}, Monotone: true},
		design.Dimension{Name: "placement", Values: []design.Value{"random", "roundrobin"}},
	)
	if err != nil {
		return err
	}
	target, err := sla.NewAvailability(0.9999)
	if err != nil {
		return err
	}
	build := func(p design.Point) (core.Scenario, []sla.SLA, error) {
		sc := scenarioBase()
		sc.Seed = seed
		sc.Users = 500
		sc.Cluster.NodeTTF = dist.Must(dist.ExpMean(800))
		sc.Repair.Detection = dist.Must(dist.NewDeterministic(12))
		sc.Cluster.NICSpec = p.MustValue("nic").(string)
		sc.Scheme = storage.ReplicationScheme(p.MustValue("replicas").(int))
		sc.Placement = p.MustValue("placement").(string)
		return sc, []sla.SLA{target}, nil
	}
	for _, mode := range []struct {
		label string
		prune bool
		abort *core.AbortRule
	}{
		{"exhaustive", false, nil},
		{"dominance pruning", true, nil},
		{"pruning + early abort", true, &core.AbortRule{MinAvailability: 0.9999, CheckEvery: 256}},
	} {
		ex := &core.Explorer{
			Space: space, Build: build,
			Runner: core.Runner{Trials: trials, Abort: mode.abort},
			Prune:  mode.prune, Workers: 1,
		}
		start := time.Now()
		res, err := ex.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-24s configs executed %2d / %2d, pruned %2d, events %9d, wall %v\n",
			mode.label, res.Executed, space.Size(), res.Pruned, res.Events,
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nShape check: pruning executes strictly fewer configurations with an")
	fmt.Println("identical passing frontier; early abort cuts events per failing run.")
	return nil
}

// e6ParallelSweep measures run-level parallel scaling (§4.2).
func e6ParallelSweep(trialOverride int, seed uint64) error {
	header("E6 (§4.2): parallel sweep scaling")
	trials := 4
	if trialOverride > 0 {
		trials = trialOverride
	}
	space, err := design.NewSpace(
		design.Dimension{Name: "replicas", Values: []design.Value{2, 3, 5}},
		design.Dimension{Name: "placement", Values: []design.Value{"random", "roundrobin"}},
	)
	if err != nil {
		return err
	}
	build := func(p design.Point) (core.Scenario, []sla.SLA, error) {
		sc := scenarioBase()
		sc.Seed = seed
		sc.Users = 1000
		sc.Scheme = storage.ReplicationScheme(p.MustValue("replicas").(int))
		sc.Placement = p.MustValue("placement").(string)
		return sc, nil, nil
	}
	var base time.Duration
	for _, workers := range []int{1, 2, 4} {
		ex := &core.Explorer{
			Space: space, Build: build,
			Runner:  core.Runner{Trials: trials, Workers: 1},
			Workers: workers,
		}
		start := time.Now()
		if _, err := ex.Run(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		if workers == 1 {
			base = elapsed
		}
		speedup := float64(base) / float64(elapsed)
		fmt.Printf("workers=%d  wall=%8v  speedup=%.2fx\n",
			workers, elapsed.Round(time.Millisecond), speedup)
	}
	fmt.Printf("(host has %d CPUs; scaling saturates there)\n", runtime.NumCPU())
	return nil
}

// e7Limpware is the §4.5 degraded-hardware study.
func e7Limpware(trialOverride int, seed uint64) error {
	header("E7 (§4.5): limpware — degraded NIC impact")
	requests := int64(30000)
	if trialOverride > 0 {
		requests = int64(trialOverride)
	}
	fmt.Printf("%-22s %10s %10s %10s\n", "NIC at % of spec", "p50 (s)", "p95 (s)", "p99 (s)")
	for _, factor := range []float64{1.0, 0.1, 0.01} {
		s := sim.New(seed)
		nodes, err := perfNodes(s, 4, workload.NodeSpec{Cores: 8, DiskIOPS: 75000, NICMBps: 125})
		if err != nil {
			return err
		}
		if factor < 1 {
			// One limping NIC out of four — the Limplock scenario.
			if err := nodes[0].DegradeNIC(factor); err != nil {
				return err
			}
		}
		profile := workload.Profile{
			Name: "netbound",
			CPU:  dist.Must(dist.ExpMean(0.0005)),
			Net:  dist.Must(dist.ExpMean(0.5)),
		}
		w, err := workload.NewWorkload(s, "w", profile, nodes)
		if err != nil {
			return err
		}
		if err := w.StartOpen(dist.Must(dist.ExpMean(0.01)), requests); err != nil {
			return err
		}
		s.RunUntil(float64(requests) * 0.01 * 2)
		lat := w.Latencies()
		fmt.Printf("%-22.0f %10.4f %10.4f %10.4f\n", factor*100,
			lat.Quantile(0.5), lat.Quantile(0.95), lat.Quantile(0.99))
	}
	fmt.Println("\nShape check: a single NIC at 1% of spec dominates the p99 tail even")
	fmt.Println("though 3 of 4 nodes are healthy — the limpware effect of the paper's [5].")
	return nil
}

// e8ErasureVsReplication compares schemes on overhead/availability/traffic.
func e8ErasureVsReplication(trialOverride int, seed uint64) error {
	header("E8 ([14]/§3): erasure coding vs replication")
	trials := 6
	if trialOverride > 0 {
		trials = trialOverride
	}
	type cfg struct {
		label  string
		scheme storage.Scheme
	}
	cases := []cfg{
		{"3-way replication", storage.ReplicationScheme(3)},
		{"5-way replication", storage.ReplicationScheme(5)},
		{"RS(6,3)", storage.RSScheme(6, 3)},
		{"RS(10,4)", storage.RSScheme(10, 4)},
	}
	fmt.Printf("%-20s %10s %14s %12s %16s\n",
		"scheme", "storage x", "unavail frac", "loss prob", "repair MB/trial")
	for _, c := range cases {
		sc := scenarioBase()
		sc.Seed = seed
		sc.Cluster.Racks = 3
		sc.Cluster.NodesPerRack = 10
		sc.Users = 1000
		// Aggressive failures + slow detection make scheme differences
		// resolvable (cf. E1).
		sc.Cluster.NodeTTF = dist.Must(dist.NewWeibull(0.7, 475))
		sc.Repair.Detection = dist.Must(dist.NewDeterministic(6))
		sc.Scheme = c.scheme
		res, err := windtunnel.Runner{Trials: trials}.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %10.2f %14.6g %12.4g %16.0f\n",
			c.label, c.scheme.Overhead(), res.Metrics["unavail_fraction"],
			res.Metrics["loss_prob"], res.Metrics["repair_bytes_mb"])
	}
	fmt.Println("\nShape check: RS codes cut storage 2x vs 3-way replication at comparable")
	fmt.Println("or better durability, paying with higher repair traffic — the [14] trade-off.")
	return nil
}

// e9TraceFitting is the §4.4 log-to-model pipeline.
func e9TraceFitting(trialOverride int, seed uint64) error {
	header("E9 (§4.4): operational-log model fitting")
	components := 400
	if trialOverride > 0 {
		components = trialOverride
	}
	truthTTF := dist.Must(dist.NewWeibull(0.7, 1500))
	truthRep := dist.Must(dist.NewLogNormal(2.2, 0.9))
	events, err := trace.Generate(trace.GeneratorConfig{
		Components: components, Horizon: 50000,
		TTF: truthTTF, Repair: truthRep, Seed: seed,
	})
	if err != nil {
		return err
	}
	ttf, rep, err := trace.FitModels(events)
	if err != nil {
		return err
	}
	fmt.Printf("synthetic log: %d events from %d components over 50,000 h\n",
		len(events), components)
	fmt.Printf("ground truth TTF: %v\n", truthTTF)
	fmt.Printf("ground truth repair: %v\n\n", truthRep)
	fmt.Printf("%-10s %-12s %-34s %10s %10s\n", "quantity", "n", "best fit", "KS", "p-value")
	fmt.Printf("%-10s %-12d %-34s %10.4f %10.3f\n", "ttf", ttf.N, ttf.Best.Dist.String(), ttf.Best.KS, ttf.Best.PValue)
	fmt.Printf("%-10s %-12d %-34s %10.4f %10.3f\n", "repair", rep.N, rep.Best.Dist.String(), rep.Best.KS, rep.Best.PValue)
	fmt.Println("\nfull candidate ranking (TTF):")
	for _, f := range ttf.All {
		if f.Err != nil {
			fmt.Printf("  %-12s fit failed: %v\n", f.Name, f.Err)
			continue
		}
		fmt.Printf("  %-12s KS=%.4f p=%.4f  %v\n", f.Name, f.KS, f.PValue, f.Dist)
	}
	return nil
}

// validation runs the §4.3 suite.
func validation(_ int, seed uint64) error {
	header("V1 (§4.3): simulator validation against closed forms")
	reports, err := windtunnel.Validate(seed)
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Println(r)
	}
	return nil
}
