// Command wtload is a closed-loop load harness for windtunneld: N
// concurrent clients each issue WTQL queries back-to-back against a
// daemon (or a fleet coordinator) and the harness reports throughput,
// the latency distribution, and the server's cache statistics — the
// numbers behind the "wind tunnel as a shared service" claim: once the
// trial cache is warm, a hundred designers asking what-if questions at
// once are served from remembered trials, not fresh simulation.
//
// Usage:
//
//	wtload -server http://localhost:8866 -clients 100 -requests 300
//	wtload -server http://localhost:8866 -q "SIMULATE ..." -clients 100
//
// Each request POSTs the query to /v1/query and consumes the whole
// NDJSON stream; a request counts as successful only when the stream
// terminates with a result event, after up to -retries retried
// attempts. A stream that dies mid-flight after the server accepted the
// job is resumed via GET /v1/jobs/{id}/stream?from=<received> — a
// reconnect-then-success still counts as exactly one successful
// request, reported separately in the resumed-vs-fresh split. The
// report includes retry totals, an error breakdown and the slowest
// request; the exit status is non-zero when any request ultimately
// failed. The default query is a small replication sweep so every
// client resolves to the same cache keys — the worst case for lock
// contention and the best case for reuse.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// defaultQuery is a 4-point sweep, small enough that a cold run
// finishes in seconds yet large enough to exercise streaming, sharding
// and the cache.
const defaultQuery = `SIMULATE availability
VARY storage.replication IN (2, 3), cluster.racks IN (4, 8)
WITH trials = 3, users = 20, seed = 7`

func main() {
	server := flag.String("server", "http://localhost:8866", "windtunneld (or coordinator) base URL")
	query := flag.String("q", defaultQuery, "WTQL query every client issues")
	clients := flag.Int("clients", 100, "concurrent clients")
	requests := flag.Int("requests", 0, "total requests across all clients (0 = one per client)")
	timeout := flag.Duration("timeout", 5*time.Minute, "abort the whole run after this duration")
	retries := flag.Int("retries", 2, "per-request retries before a request counts as failed")
	flag.Parse()

	if *requests <= 0 {
		*requests = *clients
	}
	if *requests < *clients {
		*clients = *requests
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	base := strings.TrimRight(*server, "/")
	body, err := json.Marshal(map[string]any{"query": *query})
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "wtload: %d requests, %d concurrent clients -> %s\n",
		*requests, *clients, base)
	if v := serverVersion(base); v != "" {
		fmt.Fprintf(os.Stderr, "wtload: server %s\n", v)
	}

	var (
		next        atomic.Int64
		okCount     atomic.Int64
		okResumed   atomic.Int64 // successes that needed a mid-stream reconnect
		failCount   atomic.Int64
		retryCount  atomic.Int64
		resumeCount atomic.Int64 // stream-resume attempts (not full re-submissions)
		mu          sync.Mutex
		latencies   []time.Duration
		errCounts   = map[string]int64{}
	)
	client := &http.Client{}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if next.Add(1) > int64(*requests) || ctx.Err() != nil {
					return
				}
				// One request = up to 1+retries attempts; it ultimately
				// fails only when every attempt did. Latency covers the
				// whole request including retried attempts — that is what
				// the caller experienced.
				t0 := time.Now()
				var err error
				var resumed bool
				for attempt := 0; attempt <= *retries; attempt++ {
					if attempt > 0 {
						retryCount.Add(1)
					}
					var resumes int
					resumes, err = runOnce(ctx, client, base, body)
					resumeCount.Add(int64(resumes))
					if resumes > 0 {
						resumed = true
					}
					if err == nil || ctx.Err() != nil {
						break
					}
				}
				lat := time.Since(t0)
				if err != nil {
					failCount.Add(1)
					mu.Lock()
					errCounts[errKey(err)]++
					mu.Unlock()
					continue
				}
				okCount.Add(1)
				if resumed {
					// Reconnect-then-success is still exactly one
					// successful request; it is only reported separately.
					okResumed.Add(1)
				}
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	ok, failed := okCount.Load(), failCount.Load()
	fmt.Printf("requests:   %d ok, %d failed in %s\n", ok, failed, elapsed.Round(time.Millisecond))
	fmt.Printf("resumed:    %d ok via reconnect, %d ok fresh (%d stream resumes)\n",
		okResumed.Load(), ok-okResumed.Load(), resumeCount.Load())
	fmt.Printf("retries:    %d\n", retryCount.Load())
	if ok > 0 {
		fmt.Printf("throughput: %.1f queries/s\n", float64(ok)/elapsed.Seconds())
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		fmt.Printf("latency:    p50 %s  p95 %s  p99 %s\n",
			pct(latencies, 50), pct(latencies, 95), pct(latencies, 99))
		fmt.Printf("slowest:    %s\n", latencies[len(latencies)-1].Round(time.Millisecond))
	}
	if len(errCounts) > 0 {
		keys := make([]string, 0, len(errCounts))
		for k := range errCounts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("error:      %dx %s\n", errCounts[k], k)
		}
	}
	printCacheStats(base, client)
	if failed > 0 {
		os.Exit(1)
	}
}

// errKey buckets an error for the breakdown: the first line, truncated,
// so a thousand identical failures fold into one report row.
func errKey(err error) string {
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	if len(msg) > 120 {
		msg = msg[:120] + "..."
	}
	return msg
}

// runOnce issues one query and drains its stream, requiring a terminal
// result event. When the stream dies mid-flight after the server
// accepted the job, the job's NDJSON stream is resumed in place (up to
// maxResumes times) via GET /v1/jobs/{id}/stream?from=<received> — on a
// journaling daemon the job keeps running detached, so the reconnect
// picks up exactly where the dead connection stopped. The returned
// count is how many resumes it took (0 = a clean single-connection
// run); the request is one request either way.
func runOnce(ctx context.Context, client *http.Client, base string, body []byte) (resumes int, err error) {
	const maxResumes = 3
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}

	var jobID string
	points := 0
	for {
		jid, pts, done, err := drainStream(resp)
		if jid != "" {
			jobID = jid
		}
		points += pts
		if done || err == nil {
			return resumes, err
		}
		if ctx.Err() != nil || jobID == "" || resumes >= maxResumes {
			return resumes, err
		}
		// Mid-stream death with a known job: resume its stream from the
		// last event received instead of re-submitting the query.
		resumes++
		req, rerr := http.NewRequestWithContext(ctx, "GET",
			fmt.Sprintf("%s/v1/jobs/%s/stream?from=%d", base, jobID, points), nil)
		if rerr != nil {
			return resumes, rerr
		}
		resp, rerr = client.Do(req)
		if rerr != nil {
			return resumes, rerr
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return resumes, fmt.Errorf("resume HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		}
	}
}

// drainStream consumes one NDJSON connection, closing it. done=true
// means a terminal event arrived (result or server error) and err is
// the final verdict; done=false with err != nil is a transport-level
// death the caller may resume from.
func drainStream(resp *http.Response) (jobID string, points int, done bool, err error) {
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	for {
		var ev struct {
			Type  string `json:"type"`
			ID    string `json:"id"`
			Error string `json:"error"`
		}
		if derr := dec.Decode(&ev); derr == io.EOF {
			return jobID, points, false, fmt.Errorf("stream ended without a result")
		} else if derr != nil {
			return jobID, points, false, derr
		}
		switch ev.Type {
		case "job":
			jobID = ev.ID
		case "point":
			points++
		case "result":
			return jobID, points, true, nil
		case "error":
			return jobID, points, true, fmt.Errorf("server: %s", ev.Error)
		}
	}
}

// pct returns the p-th percentile of sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	i := p * len(sorted) / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Millisecond)
}

// printCacheStats fetches and prints the server's /v1/cache snapshot —
// on a fleet coordinator this is the coordinator's own (empty) cache,
// so point wtload at a worker to read per-worker hit and peering rates.
func printCacheStats(base string, client *http.Client) {
	resp, err := client.Get(base + "/v1/cache")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st struct {
		Entries  int     `json:"entries"`
		Hits     uint64  `json:"hits"`
		DiskHits uint64  `json:"disk_hits"`
		PeerHits uint64  `json:"peer_hits"`
		Misses   uint64  `json:"misses"`
		HitRate  float64 `json:"hit_rate"`
		PoolCap  int     `json:"pool_capacity"`
	}
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return
	}
	fmt.Printf("server cache: %d entries, %d hits (%d disk, %d peer), %d misses, %.1f%% hit rate, pool=%d\n",
		st.Entries, st.Hits, st.DiskHits, st.PeerHits, st.Misses, 100*st.HitRate, st.PoolCap)
}

// serverVersion reads the daemon's build identity from /v1/healthz
// ("" when the server predates the version field or is unreachable —
// the load run proceeds either way).
func serverVersion(base string) string {
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var hz struct {
		Version  string `json:"version"`
		Go       string `json:"go"`
		Revision string `json:"revision"`
	}
	if json.NewDecoder(resp.Body).Decode(&hz) != nil || hz.Version == "" {
		return ""
	}
	v := "windtunneld " + hz.Version + " (" + hz.Go
	if hz.Revision != "" {
		v += ", " + hz.Revision
	}
	return v + ")"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wtload:", err)
	os.Exit(1)
}
