// Command windtunnel runs one availability scenario — from a JSON file or
// the built-in default — and prints the full metric report, SLA verdicts
// and cost breakdown.
//
// Usage:
//
//	windtunnel                        # default scenario
//	windtunnel -scenario dc.json -trials 20 -min-availability 0.999
//
// Scenario JSON schema (all fields optional; defaults in parentheses):
//
//	{
//	  "racks": 3, "nodes_per_rack": 10,
//	  "disk_spec": "hdd-7200", "disks_per_node": 4,
//	  "nic_spec": "nic-10g", "cpu_spec": "cpu-8c", "mem_spec": "mem-64g",
//	  "switch_spec": "switch-48p-10g",
//	  "node_mttf_hours": 12000, "node_repair_hours": 12,
//	  "node_ttf": "weibull(shape=0.7, scale=8760)",
//	  "node_repair": "lognormal(mean=12, cv=1.2)",
//	  "detection": "det(2)",
//	  "users": 1000, "object_mb": 200,
//	  "replication": 3, "rs_k": 0, "rs_m": 0,
//	  "placement": "random",
//	  "repair_mode": "parallel", "repair_concurrency": 8,
//	  "detection_hours": 0,
//	  "horizon_hours": 8766, "seed": 1,
//	  "power": {
//	    "pdus": 2, "pdu_spec": "pdu-basic", "ups_spec": "ups-240kva",
//	    "utility_ttf": "exp(mean=2000)", "utility_repair": "lognormal(mean=4, cv=1)",
//	    "ups_minutes": 15, "generator_start_prob": 0.95, "generator_start_hours": 0.2,
//	    "utilization": 0.3, "idle_fraction": 0.45, "pue": 1.5,
//	    "carbon_intensity": 0.4,
//	    "cap": 0.2, "cap_start_hours": 0, "cap_duration_hours": 0
//	  }
//	}
//
// A "power" block enables the power subsystem (set "enabled": false to
// keep a block around without it); -power prints the power & energy
// report with the energy-aware cost breakdown.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"repro/internal/cost"
	"repro/internal/dist"
	"repro/internal/hardware"
	"repro/internal/power"
	"repro/internal/repair"
	"repro/internal/sla"
	"repro/internal/storage"

	windtunnel "repro"
)

// scenarioSpec is the JSON-friendly scenario description.
type scenarioSpec struct {
	Racks             int        `json:"racks"`
	NodesPerRack      int        `json:"nodes_per_rack"`
	DiskSpec          string     `json:"disk_spec"`
	DisksPerNode      int        `json:"disks_per_node"`
	NICSpec           string     `json:"nic_spec"`
	CPUSpec           string     `json:"cpu_spec"`
	MemSpec           string     `json:"mem_spec"`
	SwitchSpec        string     `json:"switch_spec"`
	NodeMTTFHours     float64    `json:"node_mttf_hours"`
	NodeRepairHours   float64    `json:"node_repair_hours"`
	NodeTTF           dist.Spec  `json:"node_ttf"`
	NodeRepair        dist.Spec  `json:"node_repair"`
	Detection         dist.Spec  `json:"detection"`
	Users             int        `json:"users"`
	ObjectMB          float64    `json:"object_mb"`
	Replication       int        `json:"replication"`
	RSK               int        `json:"rs_k"`
	RSM               int        `json:"rs_m"`
	Placement         string     `json:"placement"`
	RepairMode        string     `json:"repair_mode"`
	RepairConcurrency int        `json:"repair_concurrency"`
	DetectionHours    float64    `json:"detection_hours"`
	HorizonHours      float64    `json:"horizon_hours"`
	Seed              uint64     `json:"seed"`
	Power             *powerSpec `json:"power"`
}

// powerSpec is the JSON-friendly power.Config. A present block enables
// the subsystem unless "enabled": false is given explicitly.
type powerSpec struct {
	Enabled             *bool     `json:"enabled"`
	PDUs                int       `json:"pdus"`
	PDUSpec             string    `json:"pdu_spec"`
	UPSSpec             string    `json:"ups_spec"`
	UtilityTTF          dist.Spec `json:"utility_ttf"`
	UtilityRepair       dist.Spec `json:"utility_repair"`
	UPSMinutes          float64   `json:"ups_minutes"`
	GeneratorStartProb  float64   `json:"generator_start_prob"`
	GeneratorStartHours float64   `json:"generator_start_hours"`
	IdleFraction        float64   `json:"idle_fraction"`
	Utilization         float64   `json:"utilization"`
	PUE                 float64   `json:"pue"`
	CarbonIntensity     float64   `json:"carbon_intensity"`
	Cap                 float64   `json:"cap"`
	CapStartHours       float64   `json:"cap_start_hours"`
	CapDurationHours    float64   `json:"cap_duration_hours"`
}

// apply converts the JSON block into a power.Config.
func (ps *powerSpec) apply() power.Config {
	cfg := power.Config{
		Enabled:             ps.Enabled == nil || *ps.Enabled,
		PDUs:                ps.PDUs,
		PDUSpec:             ps.PDUSpec,
		UPSSpec:             ps.UPSSpec,
		UtilityTTF:          ps.UtilityTTF.Dist,
		UtilityRepair:       ps.UtilityRepair.Dist,
		UPSMinutes:          ps.UPSMinutes,
		GeneratorStartProb:  ps.GeneratorStartProb,
		GeneratorStartHours: ps.GeneratorStartHours,
		IdleFraction:        ps.IdleFraction,
		Utilization:         ps.Utilization,
		PUE:                 ps.PUE,
		CarbonKgPerKWh:      ps.CarbonIntensity,
		CapFraction:         ps.Cap,
		CapStartHours:       ps.CapStartHours,
		CapDurationHours:    ps.CapDurationHours,
	}
	return cfg
}

// apply overlays the non-zero spec fields onto the default scenario.
func (sp scenarioSpec) apply() (windtunnel.Scenario, error) {
	sc := windtunnel.DefaultScenario()
	if sp.Racks > 0 {
		sc.Cluster.Racks = sp.Racks
	}
	if sp.NodesPerRack > 0 {
		sc.Cluster.NodesPerRack = sp.NodesPerRack
	}
	if sp.DiskSpec != "" {
		sc.Cluster.DiskSpec = sp.DiskSpec
	}
	if sp.DisksPerNode > 0 {
		sc.Cluster.DisksPerNode = sp.DisksPerNode
	}
	if sp.NICSpec != "" {
		sc.Cluster.NICSpec = sp.NICSpec
	}
	if sp.CPUSpec != "" {
		sc.Cluster.CPUSpec = sp.CPUSpec
	}
	if sp.MemSpec != "" {
		sc.Cluster.MemSpec = sp.MemSpec
	}
	if sp.SwitchSpec != "" {
		sc.Cluster.SwitchSpec = sp.SwitchSpec
	}
	if sp.NodeMTTFHours > 0 {
		d, err := dist.NewWeibull(0.7, sp.NodeMTTFHours/weibullMeanFactor(0.7))
		if err != nil {
			return sc, err
		}
		sc.Cluster.NodeTTF = d
	}
	if sp.NodeRepairHours > 0 {
		d, err := dist.LogNormalFromMoments(sp.NodeRepairHours, 1.2)
		if err != nil {
			return sc, err
		}
		sc.Cluster.NodeRepair = d
	}
	// Full distribution specs win over the *_hours conveniences, so a
	// scenario can declare any failure model the dist grammar expresses.
	// (Parsing already happened during json.Unmarshal via dist.Spec.)
	if sp.NodeTTF.Dist != nil {
		sc.Cluster.NodeTTF = sp.NodeTTF.Dist
	}
	if sp.NodeRepair.Dist != nil {
		sc.Cluster.NodeRepair = sp.NodeRepair.Dist
	}
	if sp.Users > 0 {
		sc.Users = sp.Users
	}
	if sp.ObjectMB > 0 {
		sc.ObjectSizeMB = sp.ObjectMB
	}
	switch {
	case sp.RSK > 0:
		sc.Scheme = storage.RSScheme(sp.RSK, sp.RSM)
	case sp.Replication > 0:
		sc.Scheme = storage.ReplicationScheme(sp.Replication)
	}
	if sp.Placement != "" {
		sc.Placement = sp.Placement
	}
	switch sp.RepairMode {
	case "":
	case "serial":
		sc.Repair.Mode = repair.Serial
	case "parallel":
		sc.Repair.Mode = repair.Parallel
	default:
		return sc, fmt.Errorf("unknown repair_mode %q", sp.RepairMode)
	}
	if sp.RepairConcurrency > 0 {
		sc.Repair.MaxConcurrent = sp.RepairConcurrency
	}
	if sp.DetectionHours > 0 {
		d, err := dist.NewDeterministic(sp.DetectionHours)
		if err != nil {
			return sc, err
		}
		sc.Repair.Detection = d
	}
	// As with node_ttf/node_repair, the full detection spec wins over
	// detection_hours.
	if sp.Detection.Dist != nil {
		sc.Repair.Detection = sp.Detection.Dist
	}
	if sp.HorizonHours > 0 {
		sc.HorizonHours = sp.HorizonHours
	}
	if sp.Seed != 0 {
		sc.Seed = sp.Seed
	}
	if sp.Power != nil {
		sc.Power = sp.Power.apply()
	}
	return sc, nil
}

// weibullMeanFactor returns Gamma(1 + 1/shape) so that
// scale = mean / factor gives a Weibull with the requested mean.
func weibullMeanFactor(shape float64) float64 {
	// Gamma(1+1/0.7) = Gamma(2.428...) computed via the dist package's
	// Weibull mean with unit scale.
	w, err := dist.NewWeibull(shape, 1)
	if err != nil {
		panic(err)
	}
	return w.Mean()
}

func main() {
	scenarioPath := flag.String("scenario", "", "scenario JSON file (default: built-in scenario)")
	trials := flag.Int("trials", 10, "independent simulation trials")
	minAvail := flag.Float64("min-availability", 0, "availability SLA to check (0 = none)")
	maxLoss := flag.Float64("max-loss", -1, "durability SLA: max loss probability (-1 = none)")
	maxPeakKW := flag.Float64("max-peak-kw", 0, "power-budget SLA: max facility peak kW (0 = none; needs a power-enabled scenario)")
	powerReport := flag.Bool("power", false, "print the power & energy report (needs a power-enabled scenario)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the run (at trial granularity); -timeout
	// bounds it. Either way the process exits non-zero via fatal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	spec := scenarioSpec{}
	if *scenarioPath != "" {
		data, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *scenarioPath, err))
		}
	}
	sc, err := spec.apply()
	if err != nil {
		fatal(err)
	}

	var slas []windtunnel.SLA
	if *minAvail > 0 {
		s, err := sla.NewAvailability(*minAvail)
		if err != nil {
			fatal(err)
		}
		slas = append(slas, s)
	}
	if *maxLoss >= 0 {
		s, err := sla.NewDurability(*maxLoss)
		if err != nil {
			fatal(err)
		}
		slas = append(slas, s)
	}
	if *maxPeakKW > 0 {
		if !sc.Power.Enabled {
			fatal(fmt.Errorf("-max-peak-kw needs a power-enabled scenario (add a \"power\" block)"))
		}
		s, err := sla.NewPowerBudget(*maxPeakKW)
		if err != nil {
			fatal(err)
		}
		slas = append(slas, s)
	}

	res, err := windtunnel.Runner{Trials: *trials, SLAs: slas}.RunContext(ctx, sc)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scenario %q: %d nodes (%d racks x %d), %s, %d users x %.0f MB, placement=%s\n",
		sc.Name, sc.Cluster.Racks*sc.Cluster.NodesPerRack, sc.Cluster.Racks,
		sc.Cluster.NodesPerRack, sc.Scheme, sc.Users, sc.ObjectSizeMB, sc.Placement)
	fmt.Printf("horizon %.0f h, %d trials\n\n", sc.HorizonHours, res.Trials)

	names := make([]string, 0, len(res.Metrics))
	for k := range res.Metrics {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		line := fmt.Sprintf("  %-22s %.6g", k, res.Metrics[k])
		if ci, ok := res.CI[k]; ok {
			line += fmt.Sprintf("  (95%% CI +-%.3g)", ci)
		}
		fmt.Println(line)
	}

	book := cost.DefaultPriceBook()
	breakdown, err := cost.EstimateWithPower(hardware.DefaultCatalog(), sc.Cluster, sc.Power, book, sc.HorizonHours)
	if err != nil {
		fatal(err)
	}
	if kwh, ok := res.Metrics["energy_kwh"]; ok {
		carbon := sc.Power.CarbonKgPerKWh
		if carbon == 0 {
			carbon = power.DefaultCarbon
		}
		breakdown = cost.WithMeasuredEnergy(breakdown, kwh, carbon, book)
	}
	fmt.Printf("\ncost: %v\n", breakdown)
	if breakdown.EnergyMeasured {
		fmt.Printf("      energy priced from the simulated %.1f kWh (not nameplate)\n", breakdown.EnergyKWh)
	}
	if perUser, err := cost.PerUserMonthlyUSD(breakdown, sc.Users); err == nil {
		fmt.Printf("      $%.2f per user per month\n", perUser)
	}

	if *powerReport {
		if !sc.Power.Enabled {
			fmt.Println("\npower: subsystem disabled (add a \"power\" block to the scenario JSON)")
		} else {
			fmt.Println("\npower & energy report:")
			for _, row := range []struct{ label, metric, unit string }{
				{"facility energy", "energy_kwh", "kWh"},
				{"IT energy", "energy_it_kwh", "kWh"},
				{"peak draw", "peak_kw", "kW"},
				{"PUE", "pue", ""},
				{"carbon", "carbon_kg", "kg CO2"},
				{"utility outages", "power_utility_outages", "/trial"},
				{"UPS ride-throughs", "power_ride_through_ok", "/trial"},
				{"generator starts", "power_generator_starts", "/trial"},
				{"facility blackouts", "power_loss_events", "/trial"},
				{"PDU failures", "power_pdu_failures", "/trial"},
			} {
				line := fmt.Sprintf("  %-20s %.6g %s", row.label, res.Metrics[row.metric], row.unit)
				if ci, ok := res.CI[row.metric]; ok {
					line += fmt.Sprintf("  (95%% CI +-%.3g)", ci)
				}
				fmt.Println(line)
			}
			fmt.Printf("  %-20s $%.0f over the horizon\n", "energy bill", breakdown.EnergyUSD)
		}
	}

	if len(res.Verdicts) > 0 {
		fmt.Println("\nSLA verdicts:")
		for _, v := range res.Verdicts {
			fmt.Printf("  %v\n", v)
		}
		if !res.AllMet {
			os.Exit(2)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "windtunnel:", err)
	os.Exit(1)
}
