package main

import (
	"encoding/json"
	"testing"

	"repro/internal/repair"
)

func TestScenarioSpecDefaults(t *testing.T) {
	sc, err := scenarioSpec{}.apply()
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("default overlay invalid: %v", err)
	}
}

func TestScenarioSpecOverlay(t *testing.T) {
	raw := `{
	  "racks": 2, "nodes_per_rack": 4,
	  "disk_spec": "ssd-sata", "disks_per_node": 2,
	  "nic_spec": "nic-40g",
	  "node_mttf_hours": 5000, "node_repair_hours": 8,
	  "users": 250, "object_mb": 64,
	  "rs_k": 6, "rs_m": 3,
	  "placement": "rackaware",
	  "repair_mode": "serial",
	  "detection_hours": 2,
	  "horizon_hours": 4000, "seed": 9
	}`
	var spec scenarioSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	sc, err := spec.apply()
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Cluster.Racks != 2 || sc.Cluster.NodesPerRack != 4 {
		t.Errorf("cluster shape %dx%d", sc.Cluster.Racks, sc.Cluster.NodesPerRack)
	}
	if sc.Cluster.DiskSpec != "ssd-sata" || sc.Cluster.NICSpec != "nic-40g" {
		t.Errorf("specs not applied: %s/%s", sc.Cluster.DiskSpec, sc.Cluster.NICSpec)
	}
	if sc.Scheme.String() != "rs-6-3" {
		t.Errorf("scheme = %v, want rs-6-3", sc.Scheme)
	}
	if sc.Placement != "rackaware" {
		t.Errorf("placement = %s", sc.Placement)
	}
	if sc.Repair.Mode != repair.Serial {
		t.Errorf("repair mode = %v", sc.Repair.Mode)
	}
	if sc.Repair.Detection == nil {
		t.Error("detection not applied")
	}
	if sc.HorizonHours != 4000 || sc.Seed != 9 {
		t.Errorf("horizon/seed = %v/%v", sc.HorizonHours, sc.Seed)
	}
	// The MTTF overlay must preserve the requested mean.
	mean := sc.Cluster.NodeTTF.Mean()
	if mean < 4999 || mean > 5001 {
		t.Errorf("node TTF mean = %v, want 5000", mean)
	}
}

func TestScenarioSpecRejectsBadRepairMode(t *testing.T) {
	if _, err := (scenarioSpec{RepairMode: "psychic"}).apply(); err == nil {
		t.Error("unknown repair mode accepted")
	}
}

func TestScenarioSpecReplicationOverlay(t *testing.T) {
	sc, err := scenarioSpec{Replication: 5}.apply()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Scheme.String() != "rep-5" {
		t.Errorf("scheme = %v, want rep-5", sc.Scheme)
	}
}
