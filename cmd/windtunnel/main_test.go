package main

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/repair"
)

func TestScenarioSpecDefaults(t *testing.T) {
	sc, err := scenarioSpec{}.apply()
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("default overlay invalid: %v", err)
	}
}

func TestScenarioSpecOverlay(t *testing.T) {
	raw := `{
	  "racks": 2, "nodes_per_rack": 4,
	  "disk_spec": "ssd-sata", "disks_per_node": 2,
	  "nic_spec": "nic-40g",
	  "node_mttf_hours": 5000, "node_repair_hours": 8,
	  "users": 250, "object_mb": 64,
	  "rs_k": 6, "rs_m": 3,
	  "placement": "rackaware",
	  "repair_mode": "serial",
	  "detection_hours": 2,
	  "horizon_hours": 4000, "seed": 9
	}`
	var spec scenarioSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	sc, err := spec.apply()
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Cluster.Racks != 2 || sc.Cluster.NodesPerRack != 4 {
		t.Errorf("cluster shape %dx%d", sc.Cluster.Racks, sc.Cluster.NodesPerRack)
	}
	if sc.Cluster.DiskSpec != "ssd-sata" || sc.Cluster.NICSpec != "nic-40g" {
		t.Errorf("specs not applied: %s/%s", sc.Cluster.DiskSpec, sc.Cluster.NICSpec)
	}
	if sc.Scheme.String() != "rs-6-3" {
		t.Errorf("scheme = %v, want rs-6-3", sc.Scheme)
	}
	if sc.Placement != "rackaware" {
		t.Errorf("placement = %s", sc.Placement)
	}
	if sc.Repair.Mode != repair.Serial {
		t.Errorf("repair mode = %v", sc.Repair.Mode)
	}
	if sc.Repair.Detection == nil {
		t.Error("detection not applied")
	}
	if sc.HorizonHours != 4000 || sc.Seed != 9 {
		t.Errorf("horizon/seed = %v/%v", sc.HorizonHours, sc.Seed)
	}
	// The MTTF overlay must preserve the requested mean.
	mean := sc.Cluster.NodeTTF.Mean()
	if mean < 4999 || mean > 5001 {
		t.Errorf("node TTF mean = %v, want 5000", mean)
	}
}

func TestScenarioSpecRejectsBadRepairMode(t *testing.T) {
	if _, err := (scenarioSpec{RepairMode: "psychic"}).apply(); err == nil {
		t.Error("unknown repair mode accepted")
	}
}

func TestScenarioSpecReplicationOverlay(t *testing.T) {
	sc, err := scenarioSpec{Replication: 5}.apply()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Scheme.String() != "rep-5" {
		t.Errorf("scheme = %v, want rep-5", sc.Scheme)
	}
}

func TestScenarioSpecDistOverrides(t *testing.T) {
	raw := `{
	  "node_mttf_hours": 5000,
	  "node_ttf": "weibull(shape=0.7, scale=8760)",
	  "node_repair": "mix(0.8*lognormal(mean=4, cv=1), 0.2*det(48))",
	  "detection_hours": 5,
	  "detection": "det(2)"
	}`
	var spec scenarioSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	sc, err := spec.apply()
	if err != nil {
		t.Fatal(err)
	}
	// The explicit spec string must win over node_mttf_hours.
	want := 8760 * math.Gamma(1+1/0.7)
	if got := sc.Cluster.NodeTTF.Mean(); math.Abs(got-want) > 1e-6 {
		t.Errorf("node TTF mean = %v, want %v (spec string should win)", got, want)
	}
	// 0.8 * 4 + 0.2 * 48 = 12.8 hours.
	if got := sc.Cluster.NodeRepair.Mean(); math.Abs(got-12.8) > 1e-9 {
		t.Errorf("node repair mean = %v, want 12.8", got)
	}
	// The detection spec string wins over detection_hours too.
	if got := sc.Repair.Detection.Mean(); got != 2 {
		t.Errorf("detection mean = %v, want 2 (spec string should win over detection_hours)", got)
	}
	// Bad specs are rejected at JSON decode time by dist.Spec.
	for _, bad := range []string{
		`{"node_ttf": "frechet(1, 2)"}`,
		`{"node_repair": "weibull(shape=0)"}`,
		`{"detection": "det("}`,
		`{"node_ttf": 42}`,
	} {
		var sp scenarioSpec
		if err := json.Unmarshal([]byte(bad), &sp); err == nil {
			t.Errorf("bad spec %s accepted", bad)
		}
	}
}

func TestScenarioSpecPowerOverlay(t *testing.T) {
	raw := `{
	  "racks": 4,
	  "power": {
	    "pdus": 2, "pdu_spec": "pdu-redundant", "ups_spec": "ups-240kva",
	    "utility_ttf": "exp(mean=2000)", "utility_repair": "det(4)",
	    "ups_minutes": 15, "generator_start_prob": 0.95, "generator_start_hours": 0.2,
	    "pue": 1.4, "carbon_intensity": 0.3,
	    "cap": 0.2, "cap_start_hours": 100, "cap_duration_hours": 50
	  }
	}`
	var spec scenarioSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	sc, err := spec.apply()
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	p := sc.Power
	if !p.Enabled {
		t.Fatal("power block did not enable the subsystem")
	}
	if p.PDUs != 2 || p.PDUSpec != "pdu-redundant" || p.UPSSpec != "ups-240kva" {
		t.Errorf("hierarchy fields: %+v", p)
	}
	if p.UtilityTTF == nil || p.UtilityTTF.Mean() != 2000 || p.UtilityRepair.Mean() != 4 {
		t.Errorf("utility dists: %+v", p)
	}
	if p.UPSMinutes != 15 || p.GeneratorStartProb != 0.95 || p.GeneratorStartHours != 0.2 {
		t.Errorf("ride-through fields: %+v", p)
	}
	if p.PUE != 1.4 || p.CarbonKgPerKWh != 0.3 {
		t.Errorf("energy fields: %+v", p)
	}
	if p.CapFraction != 0.2 || p.CapStartHours != 100 || p.CapDurationHours != 50 {
		t.Errorf("cap fields: %+v", p)
	}

	// An explicit "enabled": false keeps the block inert.
	var off scenarioSpec
	if err := json.Unmarshal([]byte(`{"power": {"enabled": false, "pdus": 2}}`), &off); err != nil {
		t.Fatal(err)
	}
	sc, err = off.apply()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Power.Enabled {
		t.Error("enabled: false ignored")
	}

	// No power block: subsystem stays off.
	sc, err = scenarioSpec{}.apply()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Power.Enabled {
		t.Error("power enabled without a block")
	}

	// Invalid power values fail scenario validation.
	var bad scenarioSpec
	if err := json.Unmarshal([]byte(`{"power": {"cap": 1.5}}`), &bad); err != nil {
		t.Fatal(err)
	}
	sc, err = bad.apply()
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err == nil {
		t.Error("cap 1.5 passed validation")
	}
}
