package windtunnel

import (
	"strings"
	"testing"
)

func TestFacadeRun(t *testing.T) {
	sc := DefaultScenario()
	sc.Users = 100
	sc.HorizonHours = 1000
	res, err := Run(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 2 {
		t.Fatalf("trials = %d, want 2", res.Trials)
	}
	if _, err := res.Metric("availability"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFigure1(t *testing.T) {
	res, err := Figure1(Figure1Config{
		N: 10, Replicas: 3, Failures: 2, Users: 10000,
		Placement: "roundrobin", Trials: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact < 0 {
		t.Fatal("exact value missing")
	}
	if res.Probability < res.CILo || res.Probability > res.CIHi {
		t.Fatal("estimate outside its own CI")
	}
}

func TestFacadeQuery(t *testing.T) {
	rs, err := Query(`
		SIMULATE availability
		VARY storage.replication IN (3)
		WITH users = 30, trials = 1, horizon_hours = 500, object_mb = 5,
		     cluster.racks = 1, cluster.nodes_per_rack = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Executed != 1 {
		t.Fatalf("executed = %d, want 1", rs.Executed)
	}
	if !strings.Contains(rs.Render(), "availability") {
		t.Fatal("render missing availability column")
	}
}

func TestFacadeSLAs(t *testing.T) {
	if _, err := AvailabilitySLA(0.999); err != nil {
		t.Fatal(err)
	}
	if _, err := AvailabilitySLA(2); err == nil {
		t.Fatal("invalid availability accepted")
	}
	if _, err := DurabilitySLA(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("validation suite is slow")
	}
	reports, err := Validate(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("validation failure: %v", r)
		}
	}
}
