// Benchmarks regenerating (scaled-down instances of) every figure and
// experiment in EXPERIMENTS.md, one benchmark per artifact, plus engine
// micro-benchmarks. `go test -bench=. -benchmem` runs them all; the full-
// size tables come from `go run ./cmd/figures -exp all`.
package windtunnel

import (
	"fmt"
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/dist"
	"repro/internal/power"
	"repro/internal/repair"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/sla"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/validate"
	"repro/internal/workload"
)

// benchScenario is a small availability scenario shared by the
// experiment benchmarks.
func benchScenario() Scenario {
	sc := DefaultScenario()
	sc.Cluster.Racks = 2
	sc.Cluster.NodesPerRack = 5
	sc.Cluster.NodeTTF = dist.Must(dist.ExpMean(500))
	sc.Cluster.NodeRepair = dist.Must(dist.NewDeterministic(12))
	sc.Users = 200
	sc.ObjectSizeMB = 32
	sc.HorizonHours = 2000
	sc.Repair.Detection = dist.Must(dist.NewDeterministic(2))
	return sc
}

// BenchmarkFigure1Random measures one Monte-Carlo Figure-1 point under
// Random placement (F1).
func BenchmarkFigure1Random(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Figure1(Figure1Config{
			N: 30, Replicas: 3, Failures: 3, Users: 10000,
			Placement: "random", Trials: 50, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1RoundRobin measures the same point under RoundRobin (F1).
func BenchmarkFigure1RoundRobin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Figure1(Figure1Config{
			N: 30, Replicas: 3, Failures: 3, Users: 10000,
			Placement: "roundrobin", Trials: 50, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Exact measures the closed-form curve (F1's overlay):
// both placements, all failure counts, N=30.
func BenchmarkFigure1Exact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for f := 0; f <= 30; f++ {
			if _, err := analytic.RandomPlacementUnavailability(30, 3, f, 10000); err != nil {
				b.Fatal(err)
			}
			if _, err := analytic.RoundRobinUnavailability(30, 5, f, 10000); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRepairTradeoff measures one E1 trial (replication vs repair).
func BenchmarkRepairTradeoff(b *testing.B) {
	sc := benchScenario()
	sc.Repair.Mode = repair.Parallel
	sc.Repair.MaxConcurrent = 8
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i + 1)
		if _, err := Run(sc, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticError measures one E2 G/G/1-vs-M/M/1 comparison.
func BenchmarkAnalyticError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, err := validate.ExponentialAssumptionError(0.6, 1.5, 0.8, 1, 20000, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterference measures one E3 co-located workload run.
func BenchmarkInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(uint64(i))
		n, err := workload.NewNodeModel(s, "n0", workload.NodeSpec{
			Cores: 8, DiskIOPS: 210, NICMBps: 1250,
		})
		if err != nil {
			b.Fatal(err)
		}
		a, err := workload.NewWorkload(s, "A", workload.Profile{
			CPU: dist.Must(dist.ExpMean(0.002)), Disk: dist.Must(dist.ExpMean(1))},
			[]*workload.NodeModel{n})
		if err != nil {
			b.Fatal(err)
		}
		bg, err := workload.NewWorkload(s, "B", workload.Profile{
			Disk: dist.Must(dist.ExpMean(4))}, []*workload.NodeModel{n})
		if err != nil {
			b.Fatal(err)
		}
		if err := a.StartOpen(dist.Must(dist.ExpMean(0.02)), 5000); err != nil {
			b.Fatal(err)
		}
		if err := bg.StartOpen(dist.Must(dist.ExpMean(0.1)), 1000); err != nil {
			b.Fatal(err)
		}
		s.RunUntil(200)
	}
}

// BenchmarkProvisioning measures one E4 provisioning point (workload sim
// plus cost estimate).
func BenchmarkProvisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(uint64(i))
		n, err := workload.NewNodeModel(s, "n0", workload.NodeSpec{
			Cores: 8, DiskIOPS: 210, NICMBps: 1250,
		})
		if err != nil {
			b.Fatal(err)
		}
		w, err := workload.NewWorkload(s, "kv", workload.Profile{
			CPU: dist.Must(dist.ExpMean(0.001)), Disk: dist.Must(dist.ExpMean(0.5))},
			[]*workload.NodeModel{n})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.StartOpen(dist.Must(dist.ExpMean(0.01)), 5000); err != nil {
			b.Fatal(err)
		}
		s.RunUntil(100)
		_ = w.Latencies().Quantile(0.95)
	}
}

// BenchmarkPruning measures an E5 pruned sweep over 12 configurations.
func BenchmarkPruning(b *testing.B) {
	space, err := design.NewSpace(
		design.Dimension{Name: "replicas", Values: []design.Value{2, 3, 5}, Monotone: true},
		design.Dimension{Name: "placement", Values: []design.Value{"random", "roundrobin"}},
	)
	if err != nil {
		b.Fatal(err)
	}
	target, err := sla.NewAvailability(0.99999)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ex := &core.Explorer{
			Space: space,
			Build: func(p design.Point) (core.Scenario, []sla.SLA, error) {
				sc := benchScenario()
				sc.Seed = uint64(i + 1)
				sc.Scheme = storage.ReplicationScheme(p.MustValue("replicas").(int))
				sc.Placement = p.MustValue("placement").(string)
				return sc, []sla.SLA{target}, nil
			},
			Runner: core.Runner{Trials: 1},
			Prune:  true,
		}
		if _, err := ex.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSweep measures an E6 parallel (unpruned) sweep.
func BenchmarkParallelSweep(b *testing.B) {
	space, err := design.NewSpace(
		design.Dimension{Name: "replicas", Values: []design.Value{2, 3}},
	)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ex := &core.Explorer{
			Space: space,
			Build: func(p design.Point) (core.Scenario, []sla.SLA, error) {
				sc := benchScenario()
				sc.Seed = uint64(i + 1)
				sc.Scheme = storage.ReplicationScheme(p.MustValue("replicas").(int))
				return sc, nil, nil
			},
			Runner:  core.Runner{Trials: 1},
			Workers: 2,
		}
		if _, err := ex.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLimpware measures one E7 degraded-NIC workload run.
func BenchmarkLimpware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(uint64(i))
		n, err := workload.NewNodeModel(s, "n0", workload.NodeSpec{
			Cores: 8, DiskIOPS: 75000, NICMBps: 125,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := n.DegradeNIC(0.01); err != nil {
			b.Fatal(err)
		}
		w, err := workload.NewWorkload(s, "w", workload.Profile{
			Net: dist.Must(dist.ExpMean(0.1))}, []*workload.NodeModel{n})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.StartOpen(dist.Must(dist.ExpMean(0.05)), 2000); err != nil {
			b.Fatal(err)
		}
		s.RunUntil(200)
	}
}

// BenchmarkErasureVsReplication measures one E8 RS-scheme trial.
func BenchmarkErasureVsReplication(b *testing.B) {
	sc := benchScenario()
	sc.Scheme = storage.RSScheme(6, 3)
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i + 1)
		if _, err := Run(sc, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSEncode measures the Reed-Solomon substrate itself: RS(10,4)
// over 64 KiB shards.
func BenchmarkRSEncode(b *testing.B) {
	code, err := storage.NewRSCode(10, 4)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	data := make([][]byte, 10)
	for i := range data {
		data[i] = make([]byte, 64<<10)
		for j := range data[i] {
			data[i][j] = byte(r.Intn(256))
		}
	}
	b.SetBytes(int64(10 * 64 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSEncodeInto measures the steady-state encode path: RS(10,4)
// over 64 KiB shards into a reused parity buffer (0 allocs/op).
func BenchmarkRSEncodeInto(b *testing.B) {
	code, err := storage.NewRSCode(10, 4)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	data := make([][]byte, 10)
	for i := range data {
		data[i] = make([]byte, 64<<10)
		for j := range data[i] {
			data[i][j] = byte(r.Intn(256))
		}
	}
	parity := make([][]byte, 4)
	for i := range parity {
		parity[i] = make([]byte, 64<<10)
	}
	b.SetBytes(int64(10 * 64 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := code.EncodeInto(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitting measures one E9 log-generation + fit pipeline.
func BenchmarkFitting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		events, err := trace.Generate(trace.GeneratorConfig{
			Components: 50, Horizon: 50000,
			TTF:    dist.Must(dist.NewWeibull(0.7, 1500)),
			Repair: dist.Must(dist.NewLogNormal(2.2, 0.9)),
			Seed:   uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := trace.FitModels(events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidation measures one V1 M/M/1 validation run.
func BenchmarkValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := validate.MM1SojournTime(0.5, 1, 20000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// vrScenario is the monotone-response workload (single-copy objects)
// where antithetic pairing anti-correlates trials; see
// internal/core/variance_test.go for the regime discussion.
func vrScenario() Scenario {
	sc := benchScenario()
	sc.Scheme = storage.ReplicationScheme(1)
	sc.Users = 100
	return sc
}

// BenchmarkRunnerPlainCI measures trials-to-target for plain Monte
// Carlo at TargetCI 4e-3 on the monotone workload (the E10 baseline).
func BenchmarkRunnerPlainCI(b *testing.B) {
	sc := vrScenario()
	trials := 0.0
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i + 1)
		res, err := core.Runner{Trials: 1024, TargetCI: 4e-3}.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		trials += float64(res.Trials)
	}
	b.ReportMetric(trials/float64(b.N), "trials/op")
}

// BenchmarkRunnerAntithetic measures the same target with §4.2
// antithetic pairing: fewer raw trials for the same confidence (E10).
func BenchmarkRunnerAntithetic(b *testing.B) {
	sc := vrScenario()
	trials := 0.0
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i + 1)
		res, err := core.Runner{Trials: 1024, TargetCI: 4e-3, Antithetic: true}.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		trials += float64(res.Trials)
	}
	b.ReportMetric(trials/float64(b.N), "trials/op")
}

// vrSweep builds the E11 multi-fidelity acceptance sweep: replication
// (3,5,7,9) x cluster size (5,10,20 nodes/rack), availability >= 0.9,
// equal TargetCI everywhere. With screening, the three clearly
// over-provisioned replication columns are decided analytically and
// only the marginal replication-3 column pays for simulation.
func vrSweep(b *testing.B, seed uint64, screened bool) *core.Exploration {
	space, err := design.NewSpace(
		design.Dimension{Name: "replicas", Values: []design.Value{3, 5, 7, 9}},
		design.Dimension{Name: "nodes", Values: []design.Value{5, 10, 20}},
	)
	if err != nil {
		b.Fatal(err)
	}
	target, err := sla.NewAvailability(0.9)
	if err != nil {
		b.Fatal(err)
	}
	ex := &core.Explorer{
		Space: space,
		Build: func(p design.Point) (core.Scenario, []sla.SLA, error) {
			sc := benchScenario()
			sc.Seed = seed
			sc.Users = 100
			sc.Cluster.NodesPerRack = p.MustValue("nodes").(int)
			sc.Scheme = storage.ReplicationScheme(p.MustValue("replicas").(int))
			return sc, []sla.SLA{target}, nil
		},
		Runner: core.Runner{Trials: 16, TargetCI: 1e-3, CRN: true},
	}
	if screened {
		ex.Screen = &core.ScreenRule{Margin: core.DefaultScreenMargin}
	}
	res, err := ex.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// sweepTrials sums the simulated trials across a sweep's outcomes.
func sweepTrials(res *core.Exploration) float64 {
	total := 0.0
	for _, out := range res.Outcomes {
		if out.Result != nil {
			total += float64(out.Result.Trials)
		}
	}
	return total
}

// BenchmarkSweepBaselineCI measures the E11 sweep with full simulation
// at every design point (the PR 2 execution model).
func BenchmarkSweepBaselineCI(b *testing.B) {
	trials, events := 0.0, 0.0
	for i := 0; i < b.N; i++ {
		res := vrSweep(b, uint64(i+1), false)
		trials += sweepTrials(res)
		events += float64(res.Events)
	}
	b.ReportMetric(trials/float64(b.N), "trials/op")
	b.ReportMetric(events/float64(b.N), "events/op")
}

// BenchmarkExplorerScreened measures the same sweep with the §2.2
// analytic screening pass deciding clear-cut points without simulation.
func BenchmarkExplorerScreened(b *testing.B) {
	trials, events := 0.0, 0.0
	for i := 0; i < b.N; i++ {
		res := vrSweep(b, uint64(i+1), true)
		if res.Screened == 0 {
			b.Fatal("nothing screened")
		}
		trials += sweepTrials(res)
		events += float64(res.Events)
	}
	b.ReportMetric(trials/float64(b.N), "trials/op")
	b.ReportMetric(events/float64(b.N), "events/op")
}

// BenchmarkEngineEvents measures raw DES throughput (events/second).
func BenchmarkEngineEvents(b *testing.B) {
	s := sim.New(1)
	var tick func()
	count := 0
	tick = func() {
		count++
		s.Schedule(1, "tick", tick)
	}
	s.Schedule(0, "tick", tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Step() {
			b.Fatal("engine drained")
		}
	}
	b.ReportMetric(float64(b.N), "events")
}

// BenchmarkWTQL measures a full declarative query (parse + plan + run).
func BenchmarkWTQL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := Query(fmt.Sprintf(`
			SIMULATE availability
			VARY storage.replication IN (2, 3)
			WITH users = 50, trials = 1, horizon_hours = 500, object_mb = 5,
			     cluster.racks = 1, cluster.nodes_per_rack = 6, seed = %d`, i))
		if err != nil {
			b.Fatal(err)
		}
		if rs.Executed == 0 {
			b.Fatal("no configurations executed")
		}
	}
}

// BenchmarkPowerObserver measures the energy meter's per-event cost —
// the zero-allocation observer internal/power layers on node and power
// domain transitions. One op is one power-state transition (the same
// granularity as a node fail/restore); it must stay at ~0 allocs/op so
// power-enabled sweeps pay arithmetic, not garbage, per event.
func BenchmarkPowerObserver(b *testing.B) {
	m, err := power.NewMeter(1024, 140, 0.45, 0.3, 1.5, 0.4, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := 0.0
	for i := 0; i < b.N; i++ {
		node := i & 1023
		m.SetNodeOn(now, node, i&1 == 0)
		now += 0.001
	}
	m.Finalize(now)
	if m.ITEnergyKWh() <= 0 {
		b.Fatal("meter integrated no energy")
	}
}
